package modsched

import (
	"math/rand"
	"testing"

	"diffra/internal/vliw"
)

// chainLoop builds a dependence chain of n adds with an optional
// loop-carried recurrence back to op 0.
func chainLoop(n int, carried bool) *Loop {
	l := &Loop{Trip: 100}
	for i := 0; i < n; i++ {
		op := Op{Kind: vliw.KindAdd}
		if i > 0 {
			op.Deps = append(op.Deps, Dep{From: i - 1})
		}
		l.Ops = append(l.Ops, op)
	}
	if carried && n > 0 {
		l.Ops[0].Deps = append(l.Ops[0].Deps, Dep{From: n - 1, Distance: 1})
	}
	return l
}

// wideLoop builds n independent operations (maximum ILP).
func wideLoop(n int, kind vliw.OpKind) *Loop {
	l := &Loop{Trip: 100}
	for i := 0; i < n; i++ {
		l.Ops = append(l.Ops, Op{Kind: kind})
	}
	return l
}

func TestResMII(t *testing.T) {
	m := vliw.Default()
	// 8 independent adds on 4 ALUs: ResMII 2.
	if got := ResMII(wideLoop(8, vliw.KindAdd), m); got != 2 {
		t.Errorf("8 adds: ResMII = %d, want 2", got)
	}
	// 6 loads on 2 memory ports: ResMII 3.
	if got := ResMII(wideLoop(6, vliw.KindLoad), m); got != 3 {
		t.Errorf("6 loads: ResMII = %d, want 3", got)
	}
}

func TestRecMII(t *testing.T) {
	m := vliw.Default()
	// No recurrence: RecMII 1.
	if got := RecMII(chainLoop(5, false), m); got != 1 {
		t.Errorf("acyclic: RecMII = %d, want 1", got)
	}
	// Recurrence of 5 adds (latency 1 each) with distance 1: RecMII 5.
	if got := RecMII(chainLoop(5, true), m); got != 5 {
		t.Errorf("5-add recurrence: RecMII = %d, want 5", got)
	}
}

func TestValidateRejectsBadLoops(t *testing.T) {
	l := &Loop{Ops: []Op{{Kind: vliw.KindAdd, Deps: []Dep{{From: 5}}}}}
	if err := l.Validate(); err == nil {
		t.Error("out-of-range dep accepted")
	}
	// Distance-0 cycle.
	l2 := &Loop{Ops: []Op{
		{Kind: vliw.KindAdd, Deps: []Dep{{From: 1}}},
		{Kind: vliw.KindAdd, Deps: []Dep{{From: 0}}},
	}}
	if err := l2.Validate(); err == nil {
		t.Error("distance-0 cycle accepted")
	}
	// Same cycle with a carried edge is legal.
	l3 := &Loop{Ops: []Op{
		{Kind: vliw.KindAdd, Deps: []Dep{{From: 1, Distance: 1}}},
		{Kind: vliw.KindAdd, Deps: []Dep{{From: 0}}},
	}}
	if err := l3.Validate(); err != nil {
		t.Errorf("legal carried cycle rejected: %v", err)
	}
}

func checkSchedule(t *testing.T, s *Schedule) {
	t.Helper()
	m := s.Machine
	l := s.Loop
	// Every dependence satisfied: t_to >= t_from + lat - II*dist.
	for to, op := range l.Ops {
		for _, d := range op.Deps {
			need := s.Time[d.From] + m.Latency(l.Ops[d.From].Kind) - s.II*d.Distance
			if s.Time[to] < need {
				t.Errorf("dep %d->%d violated: t=%d need >= %d", d.From, to, s.Time[to], need)
			}
		}
	}
	// Resource constraints per modulo row.
	rows := map[int][2]int{}
	for i, op := range l.Ops {
		row := ((s.Time[i] % s.II) + s.II) % s.II
		used := rows[row]
		used[vliw.ClassOf(op.Kind)]++
		rows[row] = used
	}
	for row, used := range rows {
		if used[vliw.ALU] > m.SlotsOf(vliw.ALU) || used[vliw.MEM] > m.SlotsOf(vliw.MEM) {
			t.Errorf("row %d oversubscribed: %v", row, used)
		}
	}
}

func TestCompileSatisfiesConstraints(t *testing.T) {
	m := vliw.Default()
	for _, l := range []*Loop{
		chainLoop(6, false),
		chainLoop(6, true),
		wideLoop(12, vliw.KindAdd),
		wideLoop(7, vliw.KindLoad),
	} {
		s, err := Compile(l, m, 32)
		if err != nil {
			t.Fatal(err)
		}
		checkSchedule(t, s)
		if s.II < MII(l, m) {
			t.Errorf("II %d below MII %d", s.II, MII(l, m))
		}
	}
}

// highPressureLoop builds a loop whose values all live long: k chains
// that start early and are consumed late, inflating MaxLive.
func highPressureLoop(k int) *Loop {
	l := &Loop{Trip: 100}
	// k long-lived producers.
	for i := 0; i < k; i++ {
		l.Ops = append(l.Ops, Op{Kind: vliw.KindMul})
	}
	// A reduction consuming all of them serially, so early values stay
	// live until late.
	prev := -1
	for i := 0; i < k; i++ {
		op := Op{Kind: vliw.KindAdd, Deps: []Dep{{From: i}}}
		if prev >= 0 {
			op.Deps = append(op.Deps, Dep{From: prev})
		}
		prev = len(l.Ops)
		l.Ops = append(l.Ops, op)
	}
	return l
}

func TestPressureTriggersSpills(t *testing.T) {
	m := vliw.Default()
	l := highPressureLoop(24)
	free, err := Compile(l, m, 64)
	if err != nil {
		t.Fatal(err)
	}
	if free.MaxLive <= 8 {
		t.Fatalf("test premise: pressure too low (%d)", free.MaxLive)
	}
	tight, err := Compile(l, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, tight)
	if tight.Spilled == 0 {
		t.Error("RegN=8 must spill")
	}
	if tight.MaxLive > 8 && tight.SpillOps == 0 {
		t.Errorf("MaxLive %d > 8 without spill ops", tight.MaxLive)
	}
	if free.Spilled != 0 {
		t.Error("RegN=64 should not spill this loop")
	}
}

func TestMoreRegistersNoWorse(t *testing.T) {
	m := vliw.Default()
	l := highPressureLoop(20)
	var prevII, prevSpills int
	for i, regN := range []int{8, 16, 24, 32, 48} {
		s, err := Compile(l, m, regN)
		if err != nil {
			t.Fatalf("regN=%d: %v", regN, err)
		}
		checkSchedule(t, s)
		if i > 0 {
			if s.Spilled > prevSpills {
				t.Errorf("regN=%d spills %d > fewer-regs spills %d", regN, s.Spilled, prevSpills)
			}
		}
		prevII, prevSpills = s.II, s.Spilled
	}
	_ = prevII
}

func TestCyclesScaleWithII(t *testing.T) {
	m := vliw.Default()
	l := chainLoop(4, true) // RecMII 4
	s, err := Compile(l, m, 32)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cycles()
	if c < s.II*l.Trip {
		t.Errorf("cycles %d below II*trip %d", c, s.II*l.Trip)
	}
}

func TestKernelRegsRespectLifetimes(t *testing.T) {
	m := vliw.Default()
	l := highPressureLoop(10)
	s, err := Compile(l, m, 32)
	if err != nil {
		t.Fatal(err)
	}
	regOf := KernelRegs(s, 32)
	for i, op := range l.Ops {
		if op.Kind == vliw.KindStore {
			if regOf[i] != -1 {
				t.Errorf("store %d got register %d", i, regOf[i])
			}
			continue
		}
		if regOf[i] < 0 || regOf[i] >= 32 {
			t.Errorf("op %d register %d out of range", i, regOf[i])
		}
	}
}

func TestAccessSequenceCoversOps(t *testing.T) {
	m := vliw.Default()
	l := chainLoop(5, false)
	s, err := Compile(l, m, 32)
	if err != nil {
		t.Fatal(err)
	}
	regOf := KernelRegs(s, 32)
	seq := AccessSequence(s, regOf)
	// 5 adds: 4 have one input each; every op has an output: 9 fields.
	if len(seq) != 9 {
		t.Errorf("sequence length %d, want 9", len(seq))
	}
}

func TestEncodingCostDropsWithDiffN(t *testing.T) {
	m := vliw.Default()
	rng := rand.New(rand.NewSource(4))
	l := randomLoop(rng, 24)
	s, err := Compile(l, m, 32)
	if err != nil {
		t.Fatal(err)
	}
	regOf := KernelRegs(s, 32)
	prev := -1
	for _, diffN := range []int{32, 16, 8, 4} {
		c := EncodingCost(s, regOf, 32, diffN, 30, 1)
		if prev >= 0 && c < prev {
			t.Errorf("diffN=%d cost %d below larger-diffN cost %d", diffN, c, prev)
		}
		prev = c
	}
	// DiffN == RegN is direct-equivalent: zero sets.
	if c := EncodingCost(s, regOf, 32, 32, 10, 1); c != 0 {
		t.Errorf("DiffN=RegN cost %d, want 0", c)
	}
}

func randomLoop(rng *rand.Rand, n int) *Loop {
	l := &Loop{Trip: 100}
	for i := 0; i < n; i++ {
		kinds := []vliw.OpKind{vliw.KindAdd, vliw.KindAdd, vliw.KindMul, vliw.KindLoad}
		op := Op{Kind: kinds[rng.Intn(len(kinds))]}
		for d := 0; d < rng.Intn(3) && i > 0; d++ {
			op.Deps = append(op.Deps, Dep{From: rng.Intn(i)})
		}
		l.Ops = append(l.Ops, op)
	}
	return l
}

func TestRandomLoopsScheduleAndSpill(t *testing.T) {
	m := vliw.Default()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		l := randomLoop(rng, 5+rng.Intn(40))
		if err := l.Validate(); err != nil {
			t.Fatalf("generator: %v", err)
		}
		for _, regN := range []int{6, 12, 32} {
			s, err := Compile(l, m, regN)
			if err != nil {
				t.Fatalf("trial %d regN %d: %v", trial, regN, err)
			}
			checkSchedule(t, s)
		}
	}
}
