package difftest

import (
	"errors"
	"fmt"

	"diffra"
	"diffra/internal/diffenc"
	"diffra/internal/interp"
	"diffra/internal/ir"
	"diffra/internal/liveness"
	"diffra/internal/regalloc"
)

// RunSpec is one input to run a function on: argument values, initial
// data memory, and a step budget (0: interp's default). The same spec
// drives the reference run and every allocated/decoded run.
type RunSpec struct {
	Args     []int64
	Mem      map[int64]int64
	MaxSteps uint64
	// ArgLive, when non-nil, is liveness.LiveParams of the SOURCE
	// function, positionally for its params. Sweeps that check one
	// source under many geometries set it once so CompareCompiled does
	// not re-run the liveness analysis per compile; nil computes it.
	ArgLive []bool
}

// Models lists the decode models the oracle exercises.
var Models = []Model{Sequential, Parallel}

// DefaultSpec derives a deterministic input for a function whose real
// inputs are unknown — the stand-in workload for self-check mode.
// Small mixed-sign arguments, a seeded page of memory, and a step
// budget: a non-terminating input truncates both runs at the same
// step, so the traces stay comparable (interp.HaltBudget).
func DefaultSpec(f *ir.Func) RunSpec {
	spec := RunSpec{Mem: map[int64]int64{}, MaxSteps: 200_000}
	for i := range f.Params {
		a := int64(7*i + 3)
		if i%2 == 1 {
			a = -a
		}
		spec.Args = append(spec.Args, a)
	}
	for a := int64(0); a < 64; a += 4 {
		spec.Mem[a] = 3*a - 61
	}
	return spec
}

// Reference computes the virtual-register trace of the original
// (pre-allocation) function: the semantics every compile of it must
// reproduce.
func Reference(f *ir.Func, spec RunSpec) (*interp.Trace, error) {
	return interp.Run(f, interp.Options{Args: spec.Args, Mem: spec.Mem, MaxSteps: spec.MaxSteps})
}

// colorFunc adapts an assignment to the regOf signature, mapping vregs
// the allocator eliminated to -1 (the interpreter rejects them if they
// are ever actually fetched).
func colorFunc(asn *regalloc.Assignment) func(ir.Reg) int {
	return func(r ir.Reg) int {
		if r < 0 || int(r) >= len(asn.Color) {
			return -1
		}
		return asn.Color[r]
	}
}

// CheckCompiled verifies one facade compile end to end: the reference
// trace of src must equal the allocated program's trace run through the
// allocation directly, and — for differential schemes — through both
// stream-decode models. A nil error means the compile is semantically
// equivalent to the source on this input.
func CheckCompiled(src *ir.Func, res *diffra.Result, spec RunSpec) error {
	ref, err := Reference(src, spec)
	if err != nil {
		return fmt.Errorf("difftest: reference run: %w", err)
	}
	return CompareCompiled(src, res, ref, spec)
}

// CompareCompiled is CheckCompiled against a precomputed reference
// trace, so sweeps can amortize the reference run across geometries.
func CompareCompiled(src *ir.Func, res *diffra.Result, ref *interp.Trace, spec RunSpec) error {
	asn := res.Assignment
	argLive := spec.ArgLive
	if argLive == nil {
		argLive = liveness.LiveParams(src)
	}
	base := interp.Options{
		Args:        spec.Args,
		OrigParams:  src.Params,
		StackParams: asn.StackParams,
		Mem:         spec.Mem,
		NumRegs:     asn.K,
		RegOf:       colorFunc(asn),
		MaxSteps:    spec.MaxSteps,
		// A dead parameter may legally share its machine register with
		// a live one (it interferes with nothing); liveness on the
		// SOURCE function decides which positional arguments bind.
		ArgLive: argLive,
	}
	// The allocation alone (registers straight from the colors):
	// separates allocator bugs from encoding bugs in the report.
	tr, err := interp.Run(res.F, base)
	if err != nil {
		return fmt.Errorf("difftest: allocated run: %w", err)
	}
	if msg := ref.Diff(tr, "reference", "allocated"); msg != "" {
		return errors.New("difftest: " + msg)
	}
	if res.Encoding == nil {
		return nil
	}
	for _, m := range Models {
		sd, err := NewStreamDecoder(res.F, base.RegOf, res.Encoding.Cfg, res.Encoding.Codes, m)
		if err != nil {
			return fmt.Errorf("difftest: %s decoder: %w", m, err)
		}
		o := base
		o.Resolver = sd
		dtr, err := interp.Run(res.F, o)
		if err != nil {
			return fmt.Errorf("difftest: %s-decoded run: %w", m, err)
		}
		if msg := ref.Diff(dtr, "reference", m.String()+"-decoded"); msg != "" {
			return errors.New("difftest: " + msg)
		}
	}
	return nil
}

// CheckEncoding exercises one encoding geometry in isolation: it
// re-encodes a clone of an already-allocated function under cfg (which
// may enable the §9 ablations — reserved registers, register classes,
// dst-first access order, per-instruction update), checks it, applies
// the planned sets, and compares the stream-decoded execution of both
// models against the direct-register execution of the same allocation.
// origParams are the pre-allocation parameters (the calling
// convention); allocated must be free of set_last_reg instructions
// (i.e. come from a non-differential compile such as Baseline).
func CheckEncoding(allocated *ir.Func, asn *regalloc.Assignment, origParams []ir.Reg, cfg diffenc.Config, spec RunSpec) error {
	base := interp.Options{
		Args:        spec.Args,
		OrigParams:  origParams,
		StackParams: asn.StackParams,
		Mem:         spec.Mem,
		NumRegs:     asn.K,
		RegOf:       colorFunc(asn),
		MaxSteps:    spec.MaxSteps,
	}
	direct, err := interp.Run(allocated, base)
	if err != nil {
		return fmt.Errorf("difftest: direct run: %w", err)
	}
	return CompareEncoding(allocated, asn, origParams, cfg, spec, direct)
}

// CompareEncoding is CheckEncoding against a precomputed direct trace.
func CompareEncoding(allocated *ir.Func, asn *regalloc.Assignment, origParams []ir.Reg, cfg diffenc.Config, spec RunSpec, direct *interp.Trace) error {
	for _, b := range allocated.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSetLastReg {
				return fmt.Errorf("difftest: %s already carries set_last_reg; re-encoding needs a clean allocation", allocated.Name)
			}
		}
	}
	regOf := colorFunc(asn)
	clone := allocated.Clone()
	enc, err := diffenc.Encode(clone, regOf, cfg)
	if err != nil {
		return fmt.Errorf("difftest: encode: %w", err)
	}
	if err := diffenc.Check(clone, regOf, cfg, enc); err != nil {
		return fmt.Errorf("difftest: check: %w", err)
	}
	enc.ApplyToIR(clone)
	for _, m := range Models {
		sd, err := NewStreamDecoder(clone, regOf, cfg, enc.Codes, m)
		if err != nil {
			return fmt.Errorf("difftest: %s decoder: %w", m, err)
		}
		o := interp.Options{
			Args:        spec.Args,
			OrigParams:  origParams,
			StackParams: asn.StackParams,
			Mem:         spec.Mem,
			NumRegs:     asn.K,
			RegOf:       regOf,
			Resolver:    sd,
			MaxSteps:    spec.MaxSteps,
		}
		dtr, err := interp.Run(clone, o)
		if err != nil {
			return fmt.Errorf("difftest: %s-decoded run: %w", m, err)
		}
		if msg := direct.Diff(dtr, "direct", m.String()+"-decoded"); msg != "" {
			return errors.New("difftest: " + msg)
		}
	}
	return nil
}
