package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"diffra"
	"diffra/internal/ir"
	"diffra/internal/service"
	"diffra/internal/telemetry"
)

// Router defaults; all overridable via Config.
const (
	defaultHealthInterval  = 2 * time.Second
	defaultUpstreamTimeout = 120 * time.Second
	defaultMaxRequestBytes = 8 << 20
	defaultHedgeMin        = 10 * time.Millisecond
	defaultHedgeMax        = 2 * time.Second
	defaultHedgeCold       = 100 * time.Millisecond // before any p95 exists
)

// Config parameterizes a Router.
type Config struct {
	// Nodes are the backend base URLs ("http://127.0.0.1:9001"), the
	// ring membership. Required, at least one.
	Nodes []string
	// Vnodes is the virtual-point count per node (0: DefaultVnodes).
	Vnodes int
	// Registry receives router metrics (nil: a fresh registry).
	Registry *telemetry.Registry
	// HealthInterval is the /healthz polling period (0: 2s; < 0
	// disables the poller — every node is then presumed healthy, which
	// is the deterministic choice for tests).
	HealthInterval time.Duration
	// HedgeAfter fixes the batch hedging delay. 0 derives it from the
	// live router_upstream_us p95, clamped to [HedgeMin, 2s]; < 0
	// disables hedging.
	HedgeAfter time.Duration
	// HedgeMin floors the derived hedging delay (0: 10ms).
	HedgeMin time.Duration
	// Timeout bounds each upstream request (0: 120s).
	Timeout time.Duration
	// MaxRequestBytes bounds a /compile body or one /batch line
	// (0: 8 MiB).
	MaxRequestBytes int64
	// Client issues upstream requests (nil: a dedicated client with
	// Timeout applied per-request via context).
	Client *http.Client
}

// Router is the cluster front tier: an HTTP server that routes
// /compile and /batch to diffrad backends by consistent-hashing the
// compile's cache key, collapses identical in-flight compiles into one
// upstream call, fails over to ring successors when a node is down,
// and hedges slow batch lines against the next node.
//
// The router holds no compile state of its own — byte payloads pass
// through untouched, so responses are exactly what a backend produced
// (the determinism proof in the tests depends on this).
type Router struct {
	cfg    Config
	ring   *Ring
	reg    *telemetry.Registry
	client *http.Client
	group  Group

	healthMu sync.RWMutex
	healthy  map[string]bool

	draining atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New validates cfg and starts the health poller (unless disabled).
// Callers must Close the router to stop the poller.
func New(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no backend nodes configured")
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = defaultHealthInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultUpstreamTimeout
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = defaultMaxRequestBytes
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = defaultHedgeMin
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes, cfg.Nodes...),
		reg:     cfg.Registry,
		client:  cfg.Client,
		healthy: make(map[string]bool, len(cfg.Nodes)),
		stop:    make(chan struct{}),
	}
	for _, n := range rt.ring.Nodes() {
		rt.healthy[n] = true // optimistic until the first poll says otherwise
	}
	rt.group.Shared = rt.reg.Counter("router_singleflight_shared_total").Inc
	if cfg.HealthInterval > 0 {
		rt.wg.Add(1)
		go rt.pollHealth()
	}
	return rt, nil
}

// Close stops the health poller. The Handler keeps serving; stop the
// enclosing http.Server to stop traffic.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	rt.wg.Wait()
}

// SetDraining flips /healthz to 503 so load balancers stop sending new
// work while in-flight requests finish (mirrors diffrad's drain).
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Handler returns the router's HTTP surface: /compile and /batch
// (proxied), /healthz, /metrics, and GET /ring (debug: the membership
// and where a ?key= would land).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", rt.handleCompile)
	mux.HandleFunc("POST /batch", rt.handleBatch)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.Handle("GET /metrics", telemetry.MetricsHandler(rt.reg, rt.refreshGauges))
	mux.HandleFunc("GET /ring", rt.handleRing)
	return mux
}

// RouteKey derives the routing key for a raw /compile request body:
// the same content-addressed service.CacheKey the backends cache
// under, so a key always routes to the node that has it. Bodies that
// fail to decode, parse, or resolve hash as raw bytes instead — the
// owner backend then reports the error, and identical broken requests
// still dedupe.
func RouteKey(body []byte) string {
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		return rawKey(body)
	}
	opts, err := diffra.Options{
		Scheme:   diffra.Scheme(req.Scheme),
		RegN:     req.RegN,
		DiffN:    req.DiffN,
		Restarts: req.Restarts,
	}.Resolved()
	if err != nil {
		return rawKey(body)
	}
	f, err := ir.Parse(req.IR)
	if err != nil {
		return rawKey(body)
	}
	return service.CacheKey(f, opts, req.Listing, req.Explain)
}

func rawKey(body []byte) string {
	sum := sha256.Sum256(body)
	return "raw:" + hex.EncodeToString(sum[:])
}

// candidates returns the failover order for key: the ring successor
// list with currently-healthy nodes first (relative order preserved
// within each class). The owner is always included — if the whole
// fleet looks down we still try it rather than failing without an
// attempt.
func (rt *Router) candidates(key string) []string {
	succ := rt.ring.Successors(key, len(rt.ring.Nodes()))
	rt.healthMu.RLock()
	defer rt.healthMu.RUnlock()
	sort.SliceStable(succ, func(i, j int) bool {
		return rt.healthy[succ[i]] && !rt.healthy[succ[j]]
	})
	return succ
}

// forward POSTs body to node+path under the upstream timeout and
// returns the full payload. Transport and read failures return err;
// any HTTP status (including 429/5xx) returns normally — status
// policy belongs to the caller.
func (rt *Router) forward(ctx context.Context, node, path string, body []byte) (payload []byte, status int, header http.Header, err error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	payload, err = io.ReadAll(resp.Body)
	rt.reg.Histogram("router_upstream_us").Observe(time.Since(start).Microseconds())
	if err != nil {
		return nil, 0, nil, err
	}
	return payload, resp.StatusCode, resp.Header, nil
}

// passthroughHeaders are the upstream response headers a proxied reply
// keeps.
var passthroughHeaders = []string{"Content-Type", "X-Diffra-Node", "Retry-After"}

// compileUpstream runs one routed compile attempt chain: the owner
// first, then ring successors on transport failure. HTTP-level errors
// (429 shed, 422 bad IR, ...) are authoritative answers from the
// owner, not failover triggers. The chosen node lands in the
// X-Diffra-Backend header.
func (rt *Router) compileUpstream(ctx context.Context, key string, body []byte) ([]byte, int, map[string]string, error) {
	var lastErr error
	for i, node := range rt.candidates(key) {
		if i > 0 {
			rt.reg.Counter("router_failovers_total").Inc()
		}
		payload, status, hdr, err := rt.forward(ctx, node, "/compile", body)
		if err != nil {
			lastErr = err
			rt.reg.CounterL("router_upstream_errors_total", "node", node).Inc()
			if ctx.Err() != nil {
				return nil, 0, nil, ctx.Err()
			}
			continue
		}
		out := map[string]string{"X-Diffra-Backend": node}
		for _, h := range passthroughHeaders {
			if v := hdr.Get(h); v != "" {
				out[h] = v
			}
		}
		return payload, status, out, nil
	}
	return nil, 0, nil, fmt.Errorf("cluster: all %d backends failed for key %.12s…: %w",
		len(rt.ring.Nodes()), key, lastErr)
}

func (rt *Router) handleCompile(w http.ResponseWriter, r *http.Request) {
	rt.reg.Counter("router_requests_total").Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxRequestBytes))
	if err != nil {
		http.Error(w, "request too large or unreadable", http.StatusRequestEntityTooLarge)
		return
	}
	key := RouteKey(body)

	// The flight key is the raw body hash, not the route key: requests
	// differing only in non-semantic fields (TimeoutMs) share a cache
	// entry but must not share a flight, or one caller's short deadline
	// would answer another's long one.
	payload, status, hdr, shared, err := rt.group.Do(r.Context(), rawKey(body),
		func(ctx context.Context) ([]byte, int, map[string]string, error) {
			return rt.compileUpstream(ctx, key, body)
		})
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away; nothing useful to write.
			return
		}
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for k, v := range hdr {
		w.Header().Set(k, v)
	}
	if shared {
		w.Header().Set("X-Diffra-Singleflight", "shared")
	}
	w.WriteHeader(status)
	w.Write(payload)
}

// hedgeDelay is how long a batch line waits on the owner before a
// second request races it on the next ring node: the configured fixed
// delay, or the live upstream p95 clamped to [HedgeMin, 2s] (100ms
// until a p95 exists).
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeAfter != 0 {
		return rt.cfg.HedgeAfter
	}
	p95 := time.Duration(rt.reg.Histogram("router_upstream_us").Snapshot().P95) * time.Microsecond
	if p95 <= 0 {
		return defaultHedgeCold
	}
	if p95 < rt.cfg.HedgeMin {
		return rt.cfg.HedgeMin
	}
	if p95 > defaultHedgeMax {
		return defaultHedgeMax
	}
	return p95
}

type hedgeReply struct {
	payload []byte
	status  int
	hdr     map[string]string
	err     error
	node    string
	hedged  bool
}

// compileHedged issues the line to the owner chain and, if no reply
// arrives within hedgeDelay, races a second attempt starting at the
// next distinct ring node. First success wins; the loser's context is
// cancelled. Used by /batch, where one slow node would otherwise set
// the whole stream's tail latency.
func (rt *Router) compileHedged(ctx context.Context, key string, body []byte) hedgeReply {
	cands := rt.candidates(key)
	delay := rt.hedgeDelay()
	if len(cands) < 2 || delay < 0 {
		p, s, h, err := rt.compileUpstream(ctx, key, body)
		return hedgeReply{payload: p, status: s, hdr: h, err: err}
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser once a winner is chosen
	replies := make(chan hedgeReply, 2)
	attempt := func(node string, hedged bool) {
		payload, status, hdr, err := rt.forward(hctx, node, "/compile", body)
		if err == nil && hdr != nil {
			out := map[string]string{"X-Diffra-Backend": node}
			for _, h := range passthroughHeaders {
				if v := hdr.Get(h); v != "" {
					out[h] = v
				}
			}
			replies <- hedgeReply{payload: payload, status: status, hdr: out, node: node, hedged: hedged}
			return
		}
		replies <- hedgeReply{err: err, node: node, hedged: hedged}
	}

	go attempt(cands[0], false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	inFlight := 1
	for {
		select {
		case <-timer.C:
			if inFlight == 1 {
				rt.reg.Counter("router_hedges_total").Inc()
				go attempt(cands[1], true)
				inFlight++
			}
		case r := <-replies:
			inFlight--
			if r.err == nil {
				if r.hedged {
					rt.reg.Counter("router_hedge_wins_total").Inc()
				}
				return r
			}
			// This attempt failed; if the other is still running let it
			// finish, otherwise fall back to the sequential chain which
			// walks every successor.
			if inFlight > 0 {
				continue
			}
			if ctx.Err() != nil {
				return hedgeReply{err: ctx.Err()}
			}
			p, s, h, err := rt.compileUpstream(ctx, key, body)
			return hedgeReply{payload: p, status: s, hdr: h, err: err}
		case <-ctx.Done():
			return hedgeReply{err: ctx.Err()}
		}
	}
}

// handleBatch streams an NDJSON request body line by line: each line
// routes independently on its own cache key (hedged), and the
// responses stream back in input order — the contract matching
// diffrad's own /batch.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.reg.Counter("router_batches_total").Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sc := bufio.NewScanner(r.Body)
	buf := int(rt.cfg.MaxRequestBytes)
	sc.Buffer(make([]byte, 64<<10), buf)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rt.reg.Counter("router_requests_total").Inc()
		body := append([]byte(nil), line...) // scanner reuses its buffer
		rep := rt.compileHedged(r.Context(), RouteKey(body), body)
		if rep.err != nil {
			if r.Context().Err() != nil {
				return
			}
			errLine, _ := json.Marshal(service.Response{Error: "cluster: " + rep.err.Error()})
			w.Write(append(errLine, '\n'))
		} else {
			payload := bytes.TrimRight(rep.payload, "\n")
			w.Write(append(payload, '\n'))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// A scan error midway (line over MaxRequestBytes, client hang-up)
	// simply truncates the stream, matching the backend's behavior.
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// handleRing reports membership and (with ?key=) where a key routes —
// the debugging view for "why did this land there".
func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	type view struct {
		Nodes   []string        `json:"nodes"`
		Healthy map[string]bool `json:"healthy"`
		Key     string          `json:"key,omitempty"`
		Order   []string        `json:"order,omitempty"`
	}
	v := view{Nodes: rt.ring.Nodes(), Healthy: map[string]bool{}}
	rt.healthMu.RLock()
	for n, ok := range rt.healthy {
		v.Healthy[n] = ok
	}
	rt.healthMu.RUnlock()
	if key := r.URL.Query().Get("key"); key != "" {
		v.Key = key
		v.Order = rt.ring.Successors(key, len(v.Nodes))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// pollHealth probes every node's /healthz each interval and records
// the verdict for candidate ordering and the per-node gauges.
func (rt *Router) pollHealth() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	rt.probeAll()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	for _, node := range rt.ring.Nodes() {
		healthy := rt.probe(node)
		rt.healthMu.Lock()
		rt.healthy[node] = healthy
		rt.healthMu.Unlock()
	}
}

func (rt *Router) probe(node string) bool {
	timeout := rt.cfg.HealthInterval
	if timeout <= 0 {
		timeout = defaultHealthInterval
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// refreshGauges publishes per-node health on every /metrics scrape.
func (rt *Router) refreshGauges() {
	rt.healthMu.RLock()
	defer rt.healthMu.RUnlock()
	for node, ok := range rt.healthy {
		v := int64(0)
		if ok {
			v = 1
		}
		rt.reg.GaugeL("router_node_healthy", "node", node).Set(v)
	}
}
