package ilp

import (
	"sync"
	"sync/atomic"
)

// Work items are the unit of parallelism: each is one component, or a
// root-fixed subtree of a large component. The item list is computed
// by a worker-count-INDEPENDENT policy and each item's search is
// serially deterministic with an order-independent starting incumbent
// (the component greedy), so claiming items from an atomic counter and
// reducing by (cost, lowest item index) yields bit-identical X, Cost,
// Optimal and Nodes at any worker count — the protocol proven in
// internal/remap.

// varFix is one root decision of a work item: variable v fixed to 1
// (with exclusivity propagation) or to 0.
type varFix struct {
	v   int
	one bool
}

type workItem struct {
	comp  int // index into preprocessed.comps
	fixes []varFix
}

const (
	// splitTargetItems bounds how many items the splitter produces;
	// fixed (never derived from Workers) to keep the item list — and
	// therefore Nodes — identical at every worker count.
	splitTargetItems = 32
	// splitMinVars: components smaller than this are one item; their
	// search is too cheap to be worth subdividing.
	splitMinVars = 24
	// splitMaxFixes caps the depth of root fixing per item.
	splitMaxFixes = 6
)

// buildItems produces the deterministic work-item list: one item per
// component, then the item with the most free variables is repeatedly
// split into its two root branches (1-branch first, preserving DFS
// order) until the target item count is reached or nothing remains
// splittable.
func buildItems(pre *preprocessed) []workItem {
	var items []workItem
	splittable := make([]bool, 0, len(pre.comps))
	for ci, c := range pre.comps {
		items = append(items, workItem{comp: ci})
		splittable = append(splittable, len(c.vars) >= splitMinVars)
	}
	scratch := map[int]*bbState{}
	for len(items) < splitTargetItems {
		pick, pickFree := -1, -1
		for idx, it := range items {
			if !splittable[idx] || len(it.fixes) >= splitMaxFixes {
				continue
			}
			free := len(pre.comps[it.comp].vars) - len(it.fixes)
			if free > pickFree {
				pick, pickFree = idx, free
			}
		}
		if pick < 0 {
			break
		}
		it := items[pick]
		st := scratch[it.comp]
		if st == nil {
			st = newBBState(pre.comps[it.comp])
			scratch[it.comp] = st
		}
		bv, ok := st.branchVarUnder(it.fixes)
		if !ok {
			// The item's prefix is infeasible or already satisfies every
			// constraint; its search is trivial, nothing to split.
			splittable[pick] = false
			continue
		}
		one := workItem{comp: it.comp, fixes: append(append([]varFix{}, it.fixes...), varFix{v: bv, one: true})}
		zero := workItem{comp: it.comp, fixes: append(append([]varFix{}, it.fixes...), varFix{v: bv, one: false})}
		items[pick] = one
		items = append(items, workItem{})
		copy(items[pick+2:], items[pick+1:])
		items[pick+1] = zero
		splittable = append(splittable, false)
		copy(splittable[pick+2:], splittable[pick+1:])
		splittable[pick+1] = splittable[pick]
	}
	return items
}

// branchVarUnder applies the fixes and returns the variable the
// search itself would branch on first — the splitter uses the exact
// branching rule, so the two children partition the item's subtree.
func (s *bbState) branchVarUnder(fixes []varFix) (int, bool) {
	c := s.c
	for i := range s.x {
		s.x[i] = 0
	}
	for i, cc := range c.cons {
		s.deficit[i] = cc.need
		s.freeCnt[i] = len(cc.vars)
	}
	s.trail = s.trail[:0]
	if _, ok := s.applyFixes(fixes); !ok {
		return 0, false
	}
	branchCon, bestSlack := -1, 0
	for i := range c.cons {
		d := s.deficit[i]
		if d <= 0 {
			continue
		}
		if s.freeCnt[i] < d {
			return 0, false
		}
		slack := s.freeCnt[i] - d
		if branchCon < 0 || slack < bestSlack {
			branchCon, bestSlack = i, slack
		}
	}
	if branchCon < 0 {
		return 0, false
	}
	for _, v := range c.cons[branchCon].sorted {
		if s.x[v] == 0 {
			return v, true
		}
	}
	return 0, false
}

// solveItems runs the item list across the configured workers. Each
// result slot is written by exactly one goroutine; items claimed after
// cancellation record only the cancelled flag so the reduce sees a
// non-optimal, greedy-backed component.
func solveItems(pre *preprocessed, items []workItem, maxNodes int, opts Options) []itemResult {
	results := make([]itemResult, len(items))
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	solveOne := func(states map[int]*bbState, i int) {
		if opts.Cancel != nil && opts.Cancel() {
			results[i] = itemResult{cancelled: true}
			return
		}
		it := items[i]
		st := states[it.comp]
		if st == nil {
			st = newBBState(pre.comps[it.comp])
			states[it.comp] = st
		}
		results[i] = st.solveItem(it, maxNodes, opts.Cancel)
	}
	if workers <= 1 {
		states := map[int]*bbState{}
		for i := range items {
			solveOne(states, i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			states := map[int]*bbState{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				solveOne(states, i)
			}
		}()
	}
	wg.Wait()
	return results
}
