package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
)

// MetricsHandler serves a registry over HTTP with the service's
// content negotiation: indented JSON of Registry.Snapshot by default,
// the Prometheus text exposition when the Accept header asks for
// text/plain or openmetrics, either forced with ?format=prometheus or
// ?format=json. refresh, when non-nil, runs before every render so
// scrape-time gauges (uptime, goroutines, heap) stay current. Both the
// compile daemon and the cluster router mount this handler, so one
// scrape config covers every process of a fleet.
func MetricsHandler(reg *Registry, refresh func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if refresh != nil {
			refresh()
		}
		if WantsPrometheus(r) {
			w.Header().Set("Content-Type", PrometheusContentType)
			reg.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
}

// WantsPrometheus reports whether an HTTP request negotiated the
// Prometheus text exposition instead of the default JSON snapshot.
func WantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}
