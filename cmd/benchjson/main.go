// Command benchjson persists the compiler's performance trajectory:
// it runs micro-benchmarks in-process (via testing.Benchmark, so the
// numbers match `go test -bench`) and writes them to a JSON file with
// enough host context to interpret them later. Four suites exist:
//
//	go run ./cmd/benchjson -suite remap    -o BENCH_remap.json
//	go run ./cmd/benchjson -suite ilp      -o BENCH_ilp.json
//	go run ./cmd/benchjson -suite pipeline -o BENCH_pipeline.json
//	go run ./cmd/benchjson -suite alloc    -o BENCH_alloc.json
//
// The remap suite covers the remap-search, encoding and allocator hot
// paths; the ilp suite covers the exact-spilling branch-and-bound
// (decomposed solver vs the retained legacy baseline, plus the
// end-to-end ospill decision on a real kernel); the pipeline suite is
// the end-to-end CompileFunc baseline over the §8 MiBench kernels,
// measured twice — telemetry off (nil tracer, the compiled-out path)
// and with the service's always-on capture attached — so the
// instrumentation overhead is a number in the report, not a guess;
// the alloc suite races the portfolio's two general-purpose backends
// — the SSA fast-path scan against iterated register coalescing — on
// every kernel at the wide K=32 register file, recording a per-kernel
// speedup column and the geometric-mean headline that backs the
// documented "at least 5× lower latency" claim (-min-ssa-speedup
// turns that claim into an exit code for CI).
// The checked-in BENCH_remap.json, BENCH_ilp.json,
// BENCH_pipeline.json and BENCH_alloc.json at the repository root are
// the baselines;
// compare the ns/op, evals/sec, nodes/sec and allocs/op columns
// against the previous revision before accepting a change to either
// hot path. -benchtime forwards to the harness (e.g. 100x, 2s) when a
// quick smoke run is enough.
//
// -baseline FILE turns a run into a regression gate: every benchmark
// whose name appears in both the fresh run and FILE has its allocs/op
// compared, and the process exits non-zero if any lane regressed by
// more than -max-alloc-regress-pct percent (plus a small absolute
// floor, so a 2→3 allocs/op jitter never fails a build). CI runs the
// pipeline suite at -benchtime 1x against the committed
// BENCH_pipeline.json this way; the suites pre-warm their scratch
// arenas so even a single-iteration run measures the steady state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"

	"diffra"
	"diffra/internal/adjacency"
	"diffra/internal/diffenc"
	"diffra/internal/experiments"
	"diffra/internal/ilp"
	"diffra/internal/ir"
	"diffra/internal/irc"
	"diffra/internal/modsched"
	"diffra/internal/ospill"
	"diffra/internal/remap"
	"diffra/internal/scratch"
	"diffra/internal/ssaalloc"
	"diffra/internal/telemetry"
	"diffra/internal/vliw"
	"diffra/internal/workloads"
)

// result is one benchmark row of the JSON report.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EvalsPerSec is the remap searches' cost-evaluation throughput
	// (zero for benchmarks that are not searches).
	EvalsPerSec float64 `json:"evals_per_sec,omitempty"`
	// NodesPerSec is the ILP solvers' branch-and-bound node throughput
	// (zero for benchmarks that are not solves).
	NodesPerSec float64 `json:"nodes_per_sec,omitempty"`
}

type report struct {
	// Host context: throughput numbers are only comparable on the same
	// hardware, and worker scaling only visible with NumCPU > 1.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Benchmarks []result `json:"benchmarks"`

	// SpeedupCSRSerial is legacy ns/op over the serial CSR-engine
	// ns/op: the single-threaded win of the CSR + register-cost-matrix
	// hot path. SpeedupWorkers8 is serial engine ns/op over the
	// 8-worker ns/op — wall-clock parallel scaling, bounded by NumCPU.
	// (Remap suite only.)
	SpeedupCSRSerial float64 `json:"speedup_csr_serial,omitempty"`
	SpeedupWorkers8  float64 `json:"speedup_workers_8,omitempty"`

	// SpeedupIRCFlat is legacy allocator ns/op over the flat allocator's
	// ns/op on the susan kernel: the single-threaded win of the
	// index-structure + scratch-arena rebuild of iterated register
	// coalescing. The two lanes' allocs/op columns are the headline —
	// the flat lane runs with a warm arena, the service's steady state.
	// (Remap suite only.)
	SpeedupIRCFlat float64 `json:"speedup_irc_flat,omitempty"`

	// SpeedupLegacySerial is legacy ns/op over the decomposed solver's
	// serial ns/op on the hard-disjoint family — the single-threaded
	// structural win of decomposition + bound strengthening.
	// OverlapNodesPerSecRatio is the decomposed solver's nodes/sec
	// over legacy's on the hard-overlap family: on one connected
	// component ns/op is incomparable (legacy truncates at its node
	// budget while the decomposed solver proves optimality), so the
	// per-node throughput of the flat-arena search is the honest
	// number there. SpeedupILPWorkers8 is the decomposed solver's
	// serial ns/op over its 8-worker ns/op on hard-disjoint —
	// wall-clock parallel scaling, bounded by NumCPU. (ILP suite
	// only.)
	SpeedupLegacySerial     float64 `json:"speedup_legacy_serial,omitempty"`
	OverlapNodesPerSecRatio float64 `json:"overlap_nodes_per_sec_ratio,omitempty"`
	SpeedupILPWorkers8      float64 `json:"speedup_ilp_workers_8,omitempty"`

	// StageShares is the per-stage share of total compile time,
	// aggregated over one traced compile of every kernel: for each
	// depth-1 stage span (allocate, remap, refine, verify, encode,
	// check) the summed stage duration over the summed root duration.
	// Shares need not sum to 1 — time between stages is the
	// pipeline's own glue. (Pipeline suite only.)
	StageShares map[string]float64 `json:"stage_shares,omitempty"`
	// InstrumentationOverheadPct is the measured cost of the
	// service's always-on capture: each kernel's plain and traced
	// benchmarks run back-to-back and the reported number is the
	// median of the per-kernel traced/plain ratios, minus one, in
	// percent — pairing plus the median keeps clock drift and noisy
	// neighbours on a shared box from swamping a sub-percent effect.
	// The acceptance bound is 3%; negative values are measurement
	// noise. (Pipeline suite only.)
	InstrumentationOverheadPct float64 `json:"instrumentation_overhead_pct,omitempty"`

	// AllocSpeedups is IRC ns/op over SSA-scan ns/op per kernel, and
	// SpeedupSSAGeomean their geometric mean — the latency multiple the
	// deadline ladder banks on when it steps a request down to the scan.
	// Per-kernel ratios are paired (the two lanes run back-to-back per
	// kernel) so shared-box drift largely cancels; the geomean keeps one
	// outlier kernel from dominating the headline. (Alloc suite only.)
	AllocSpeedups     map[string]float64 `json:"alloc_speedups,omitempty"`
	SpeedupSSAGeomean float64            `json:"speedup_ssa_geomean,omitempty"`

	// ModschedJoint is the joint-vs-phased comparison over the SPEC-like
	// loop population sample: aggregate set_last_reg and cycle totals
	// under both pipelines, the number of loops the combined search
	// strictly improved, and the branch-and-bound effort. The two
	// speedup fields below are the joint solver's wall-clock scaling
	// (workers=1 ns/op over workers=4/8 ns/op), only meaningful with
	// NumCPU > 1 — the host block records what was available.
	// (Modsched suite only.)
	ModschedJoint        *modschedJointSummary `json:"modsched_joint,omitempty"`
	SpeedupJointWorkers4 float64               `json:"speedup_joint_workers_4,omitempty"`
	SpeedupJointWorkers8 float64               `json:"speedup_joint_workers_8,omitempty"`
}

// modschedJointSummary aggregates the joint-vs-phased deltas recorded
// by the modsched suite.
type modschedJointSummary struct {
	Loops            int     `json:"loops"`
	Optimized        int     `json:"optimized"`
	RegN             int     `json:"reg_n"`
	DiffN            int     `json:"diff_n"`
	Improved         int     `json:"improved"`
	SetsPhased       int     `json:"sets_phased"`
	SetsJoint        int     `json:"sets_joint"`
	SpeedupPhasedPct float64 `json:"speedup_phased_pct"`
	SpeedupJointPct  float64 `json:"speedup_joint_pct"`
	BBNodes          int64   `json:"bb_nodes"`
}

// remapWorkload rebuilds the BenchmarkRemapGreedy setup from the root
// benchmark harness: the bitcount kernel allocated at K=12.
func remapWorkload() (*adjacency.Graph, remap.Options, error) {
	k := workloads.KernelByName("bitcount")
	out, asn, err := irc.Allocate(k.F, irc.Options{K: 12})
	if err != nil {
		return nil, remap.Options{}, err
	}
	g := adjacency.BuildReg(out, func(r ir.Reg) int { return asn.Color[r] }, 12)
	return g, remap.Options{RegN: 12, DiffN: 8, Restarts: 100, Seed: 1}, nil
}

func run(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	row := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if evals, ok := r.Extra["evals/s"]; ok {
		row.EvalsPerSec = evals
	}
	if nodes, ok := r.Extra["nodes/s"]; ok {
		row.NodesPerSec = nodes
	}
	fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %10d allocs/op\n", name, row.NsPerOp, row.AllocsPerOp)
	return row
}

func main() {
	testing.Init()
	suite := flag.String("suite", "remap", "benchmark suite: remap|ilp|pipeline|alloc|modsched")
	out := flag.String("o", "", "output file (- for stdout; default BENCH_<suite>.json)")
	benchtime := flag.String("benchtime", "", "per-benchmark run time or count (e.g. 2s, 100x; default 1s)")
	maxprocs := flag.Int("gomaxprocs", 0, "run suites under this GOMAXPROCS (0 = inherit); recorded in the host block so parallel-worker speedups are attributable")
	baseline := flag.String("baseline", "", "baseline report to gate against: exit non-zero if any shared lane's allocs/op regressed (the CI alloc guard)")
	maxRegress := flag.Float64("max-alloc-regress-pct", 10, "allowed allocs/op growth over -baseline, in percent")
	minSSASpeedup := flag.Float64("min-ssa-speedup", 0, "exit non-zero if the alloc suite's speedup_ssa_geomean falls below this (0 = no gate)")
	flag.Parse()
	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
	}
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	switch *suite {
	case "remap":
		runRemapSuite(&rep)
	case "ilp":
		runILPSuite(&rep)
	case "pipeline":
		runPipelineSuite(&rep)
	case "alloc":
		runAllocSuite(&rep)
	case "modsched":
		runModschedSuite(&rep)
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown suite %q (want remap, ilp, pipeline, alloc or modsched)\n", *suite)
		os.Exit(2)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *baseline != "" {
		if err := checkAllocRegression(*baseline, &rep, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *minSSASpeedup > 0 && rep.SpeedupSSAGeomean < *minSSASpeedup {
		fmt.Fprintf(os.Stderr, "benchjson: speedup_ssa_geomean %.2f below the %.2f floor\n",
			rep.SpeedupSSAGeomean, *minSSASpeedup)
		os.Exit(1)
	}
}

// allocNoiseFloor is the absolute allocs/op slack granted on top of
// the percentage budget: lanes in the single digits jitter by a
// handful of allocations (map growth, a pooled buffer minted under
// unlucky timing) and a 2→3 step is a 50% "regression" that means
// nothing. Real hot-loop regressions — a per-iteration map or slice —
// show up as hundreds of allocations and clear both thresholds.
const allocNoiseFloor = 10

// checkAllocRegression compares the fresh report's allocs/op against a
// committed baseline, lane by lane (only names present in both count,
// so adding or retiring lanes never breaks the gate), and returns an
// error naming every lane that grew past maxPct percent plus the
// noise floor.
func checkAllocRegression(path string, rep *report, maxPct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byName := map[string]result{}
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	compared, failed := 0, 0
	for _, r := range rep.Benchmarks {
		b, ok := byName[r.Name]
		if !ok {
			continue
		}
		compared++
		limit := float64(b.AllocsPerOp)*(1+maxPct/100) + allocNoiseFloor
		if float64(r.AllocsPerOp) > limit {
			failed++
			fmt.Fprintf(os.Stderr, "ALLOC REGRESSION %-28s %d allocs/op, baseline %d (limit %.0f)\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp, limit)
		}
	}
	fmt.Fprintf(os.Stderr, "alloc gate: %d lanes compared against %s, %d over budget\n", compared, path, failed)
	if failed > 0 {
		return fmt.Errorf("%d lane(s) regressed more than %.0f%% over %s", failed, maxPct, path)
	}
	return nil
}

func runRemapSuite(rep *report) {
	g, opts, err := remapWorkload()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	reportEvals := func(b *testing.B, evals int) {
		b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
	}

	rep.Benchmarks = append(rep.Benchmarks, run("RemapGreedy/legacy", func(b *testing.B) {
		b.ReportAllocs()
		evals := 0
		for i := 0; i < b.N; i++ {
			evals += remap.LegacyGreedy(g, opts).Evaluated
		}
		reportEvals(b, evals)
	}))
	for _, workers := range []int{1, 2, 8} {
		o := opts
		o.Workers = workers
		rep.Benchmarks = append(rep.Benchmarks, run(fmt.Sprintf("RemapGreedy/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			evals := 0
			for i := 0; i < b.N; i++ {
				evals += remap.Greedy(g, o).Evaluated
			}
			reportEvals(b, evals)
		}))
	}

	sha := workloads.KernelByName("sha")
	shaOut, shaAsn, err := irc.Allocate(sha.F, irc.Options{K: 12})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	cfg := diffenc.Config{RegN: 12, DiffN: 8}
	regOf := func(r ir.Reg) int { return shaAsn.Color[r] }
	// Warm arena: the encode lane's allocs/op is the steady state the
	// service sees, with the arena's regions already grown.
	ar := new(scratch.Arena)
	if _, err := diffenc.EncodeScratch(shaOut, regOf, cfg, ar); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Benchmarks = append(rep.Benchmarks, run("DiffEncode/sha", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ar.Reset()
			if _, err := diffenc.EncodeScratch(shaOut, regOf, cfg, ar); err != nil {
				b.Fatal(err)
			}
		}
	}))

	susan := workloads.KernelByName("susan")
	if _, _, err := irc.Allocate(susan.F, irc.Options{K: 8, Scratch: ar}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Benchmarks = append(rep.Benchmarks, run("IRCAllocate/susan/flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := irc.Allocate(susan.F, irc.Options{K: 8, Scratch: ar}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Benchmarks = append(rep.Benchmarks, run("IRCAllocate/susan/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := irc.LegacyAllocate(susan.F, irc.Options{K: 8}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	byName := map[string]result{}
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	if legacy, serial := byName["RemapGreedy/legacy"], byName["RemapGreedy/workers=1"]; serial.NsPerOp > 0 {
		rep.SpeedupCSRSerial = legacy.NsPerOp / serial.NsPerOp
	}
	if serial, w8 := byName["RemapGreedy/workers=1"], byName["RemapGreedy/workers=8"]; w8.NsPerOp > 0 {
		rep.SpeedupWorkers8 = serial.NsPerOp / w8.NsPerOp
	}
	if legacy, flat := byName["IRCAllocate/susan/legacy"], byName["IRCAllocate/susan/flat"]; flat.NsPerOp > 0 {
		rep.SpeedupIRCFlat = legacy.NsPerOp / flat.NsPerOp
	}
}

// runILPSuite benchmarks the exact-spilling branch-and-bound on the
// two synthetic hard families (mirroring BenchmarkILPSolve in
// internal/ilp) and the end-to-end ospill decision on the susan
// kernel at K=6, where register pressure forces a non-trivial ILP.
func runILPSuite(rep *report) {
	disjoint := ilp.HardDisjoint(8, 12, 6)
	overlap := ilp.HardOverlap(8, 12, 6)
	reportNodes := func(b *testing.B, nodes int) {
		b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
	}
	families := []struct {
		name string
		p    ilp.Problem
	}{{"disjoint", disjoint}, {"overlap", overlap}}
	for _, fam := range families {
		fam := fam
		rep.Benchmarks = append(rep.Benchmarks, run("ILPSolve/"+fam.name+"/legacy", func(b *testing.B) {
			b.ReportAllocs()
			nodes := 0
			for i := 0; i < b.N; i++ {
				nodes += ilp.LegacySolve(fam.p, ilp.Options{MaxNodes: 50000}).Nodes
			}
			reportNodes(b, nodes)
		}))
		for _, workers := range []int{1, 2, 8} {
			opts := ilp.Options{MaxNodes: 50000, Workers: workers}
			rep.Benchmarks = append(rep.Benchmarks, run(fmt.Sprintf("ILPSolve/%s/workers=%d", fam.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				nodes := 0
				for i := 0; i < b.N; i++ {
					nodes += ilp.Solve(fam.p, opts).Nodes
				}
				reportNodes(b, nodes)
			}))
		}
	}

	susan := workloads.KernelByName("susan")
	rep.Benchmarks = append(rep.Benchmarks, run("OspillDecide/susan", func(b *testing.B) {
		b.ReportAllocs()
		nodes := 0
		for i := 0; i < b.N; i++ {
			_, _, st := ospill.DecideSpillsExtended(susan.F, 6, 0)
			nodes += st.ILPNodes
		}
		reportNodes(b, nodes)
	}))

	byName := map[string]result{}
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	if legacy, serial := byName["ILPSolve/disjoint/legacy"], byName["ILPSolve/disjoint/workers=1"]; serial.NsPerOp > 0 {
		rep.SpeedupLegacySerial = legacy.NsPerOp / serial.NsPerOp
	}
	if legacy, serial := byName["ILPSolve/overlap/legacy"], byName["ILPSolve/overlap/workers=1"]; legacy.NodesPerSec > 0 {
		rep.OverlapNodesPerSecRatio = serial.NodesPerSec / legacy.NodesPerSec
	}
	if serial, w8 := byName["ILPSolve/disjoint/workers=1"], byName["ILPSolve/disjoint/workers=8"]; w8.NsPerOp > 0 {
		rep.SpeedupILPWorkers8 = serial.NsPerOp / w8.NsPerOp
	}
}

// pipelineOpts is the pipeline suite's fixed configuration: the
// paper's reference point (select scheme, 12 registers, 8 encodable
// differences) at the same restart budget the remap suite uses, so
// one compile stays in the hundreds of microseconds and ten kernels
// fit in a default benchtime run. The shared scratch arena is the
// service's per-worker configuration: CompileFunc resets it between
// phases, so the steady-state allocs/op the suite reports is what a
// warm daemon worker pays per request.
func pipelineOpts(ar *scratch.Arena) diffra.Options {
	return diffra.Options{Scheme: diffra.Select, RegN: 12, DiffN: 8, Restarts: 100, Scratch: ar}
}

// runPipelineSuite benchmarks end-to-end CompileFunc over every §8
// kernel, twice per kernel: Pipeline/<k> with Telemetry nil (the
// compiled-out path — a nil tracer costs nothing) and
// PipelineTraced/<k> with the service's always-on capture attached (a
// fresh CollectSink per compile plus the span→metrics bridge, exactly
// what internal/service wires per request).
//
// The overhead being bounded is sub-percent on a quiet machine, so
// the measurement has to defend itself against scheduler noise: every
// pair runs back-to-back (so drift hits both sides), the whole
// alternating sweep repeats pipelineRounds times, each benchmark's
// reported row is its fastest round (noise on a shared box is
// one-sided — it only ever slows a run down), and the headline
// instrumentation_overhead_pct is the median of the per-kernel
// traced/plain ratios over those minima. stage_shares come from one
// traced compile per kernel.
const pipelineRounds = 3

func runPipelineSuite(rep *report) {
	bridge := &telemetry.MetricsSink{Reg: telemetry.NewRegistry()}
	kernels := workloads.Kernels()
	// Prime the shared arena: one compile of every kernel grows its
	// regions to the suite's high-water mark, so even a -benchtime 1x
	// smoke run (CI's alloc-regression gate) measures the steady state
	// rather than the one-time warm-up.
	ar := new(scratch.Arena)
	for _, k := range kernels {
		if _, err := diffra.CompileFunc(k.F.Clone(), pipelineOpts(ar)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	best := map[string]result{}
	keep := func(row result) {
		if prev, ok := best[row.Name]; !ok || row.NsPerOp < prev.NsPerOp {
			best[row.Name] = row
		}
	}
	for round := 0; round < pipelineRounds; round++ {
		for _, k := range kernels {
			k := k
			keep(run("Pipeline/"+k.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := diffra.CompileFunc(k.F.Clone(), pipelineOpts(ar)); err != nil {
						b.Fatal(err)
					}
				}
			}))
			keep(run("PipelineTraced/"+k.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					capture := &telemetry.CollectSink{}
					opts := pipelineOpts(ar)
					opts.Telemetry = telemetry.New(telemetry.MultiSink{capture, bridge})
					if _, err := diffra.CompileFunc(k.F.Clone(), opts); err != nil {
						b.Fatal(err)
					}
					if capture.Last() == nil {
						b.Fatal("capture lost the span tree")
					}
				}
			}))
		}
	}

	var ratios []float64
	for _, k := range kernels {
		plain, traced := best["Pipeline/"+k.Name], best["PipelineTraced/"+k.Name]
		rep.Benchmarks = append(rep.Benchmarks, plain, traced)
		if plain.NsPerOp > 0 {
			ratios = append(ratios, traced.NsPerOp/plain.NsPerOp)
		}
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		median := ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
		}
		rep.InstrumentationOverheadPct = (median - 1) * 100
		fmt.Fprintf(os.Stderr, "instrumentation overhead (median of paired min ratios): %+.2f%%\n",
			rep.InstrumentationOverheadPct)
	}

	var rootDur float64
	stages := map[string]float64{}
	for _, k := range workloads.Kernels() {
		capture := &telemetry.CollectSink{}
		opts := pipelineOpts(ar)
		opts.Telemetry = telemetry.New(capture)
		if _, err := diffra.CompileFunc(k.F.Clone(), opts); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		root := capture.Last()
		rootDur += root.Dur.Seconds()
		for _, c := range root.Children {
			stages[telemetry.NormalizeStage(c.Name)] += c.Dur.Seconds()
		}
	}
	if rootDur > 0 {
		rep.StageShares = map[string]float64{}
		for name, d := range stages {
			rep.StageShares[name] = d / rootDur
		}
	}
}

// allocK is the alloc suite's register-file width. K=32 keeps every
// §8 kernel spill-free, which is the comparison that matters: once
// both backends spill they share RewriteSpills and the gap collapses
// to the rewrite cost, but the deadline ladder steps down precisely
// when allocation itself — not spill insertion — is the budget risk.
const allocK = 32

// runAllocSuite races ssaalloc.Allocate against irc.Allocate on every
// §8 kernel, back-to-back per kernel so shared-box drift hits both
// lanes of a ratio. Both lanes run on pre-warmed private arenas, the
// daemon worker's steady state; the SSA lane's allocs/op column is
// the same number the root TestAllocBudget pins.
func runAllocSuite(rep *report) {
	kernels := workloads.Kernels()
	ssaAr, ircAr := new(scratch.Arena), new(scratch.Arena)
	for _, k := range kernels {
		if _, _, err := ssaalloc.Allocate(k.F, ssaalloc.Options{K: allocK, Scratch: ssaAr}); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if _, _, err := irc.Allocate(k.F, irc.Options{K: allocK, Scratch: ircAr}); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	rep.AllocSpeedups = map[string]float64{}
	logSum := 0.0
	for _, k := range kernels {
		k := k
		ssa := run("AllocSSA/"+k.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ssaalloc.Allocate(k.F, ssaalloc.Options{K: allocK, Scratch: ssaAr}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ircRow := run("AllocIRC/"+k.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := irc.Allocate(k.F, irc.Options{K: allocK, Scratch: ircAr}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, ssa, ircRow)
		speedup := ircRow.NsPerOp / ssa.NsPerOp
		rep.AllocSpeedups[k.Name] = speedup
		logSum += math.Log(speedup)
		fmt.Fprintf(os.Stderr, "%-28s %6.2fx\n", "speedup/"+k.Name, speedup)
	}
	rep.SpeedupSSAGeomean = math.Exp(logSum / float64(len(kernels)))
	fmt.Fprintf(os.Stderr, "ssa-over-irc speedup (geomean): %.2fx\n", rep.SpeedupSSAGeomean)
}

// Modsched-suite configuration: the population sample is the first 300
// loops of the seed-42 population (so numbers stay comparable across
// revisions) compared at RegN=56/DiffN=32, the widest sweep point where
// the phased remapper still leaves repairs on the table; the joint
// worker-scaling lanes run a hard optimized loop at a tight geometry so
// the branch-and-bound genuinely burns its node budget.
const (
	modschedSampleLoops = 300
	modschedRegN        = 56
	modschedBenchNodes  = 30000
)

// runModschedSuite benchmarks the phased modulo-scheduling pipeline
// against the joint scheduling × allocation branch-and-bound: a phased
// compile lane, joint-solve lanes at workers 1/2/4/8 with nodes/sec
// (the work-stealing engine's throughput on ONE connected instance —
// the case component decomposition cannot split), and the aggregate
// joint-vs-phased cost deltas over the population sample.
func runModschedSuite(rep *report) {
	m := vliw.Default()
	loops := workloads.SPECLoops(42, modschedSampleLoops)

	// A deterministic hard instance: the first loop whose joint search
	// exhausts the bench budget at a tight register geometry.
	var hard *modsched.Loop
	for _, l := range loops {
		r, err := modsched.SolveJoint(l, m, 16, 4, modsched.JointOptions{Restarts: 40, Seed: 42, MaxNodes: modschedBenchNodes})
		if err != nil {
			continue
		}
		if !r.Skipped && r.Nodes >= modschedBenchNodes {
			hard = l
			break
		}
	}
	if hard == nil {
		fmt.Fprintln(os.Stderr, "benchjson: no hard joint instance in the sample")
		os.Exit(1)
	}

	rep.Benchmarks = append(rep.Benchmarks, run("ModschedPhased/hard", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := modsched.Compile(hard, m, 16)
			if err != nil {
				b.Fatal(err)
			}
			regs := modsched.KernelRegs(s, 16)
			modsched.EncodingCost(s, regs, 16, 4, 40, 42)
		}
	}))
	reportNodes := func(b *testing.B, nodes int) {
		b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		rep.Benchmarks = append(rep.Benchmarks, run(fmt.Sprintf("ModschedJoint/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			nodes := 0
			for i := 0; i < b.N; i++ {
				r, err := modsched.SolveJoint(hard, m, 16, 4, modsched.JointOptions{
					Restarts: 40, Seed: 42, MaxNodes: modschedBenchNodes, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				nodes += r.Nodes
			}
			reportNodes(b, nodes)
		}))
	}

	byName := map[string]result{}
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	if serial, w4 := byName["ModschedJoint/workers=1"], byName["ModschedJoint/workers=4"]; w4.NsPerOp > 0 {
		rep.SpeedupJointWorkers4 = serial.NsPerOp / w4.NsPerOp
	}
	if serial, w8 := byName["ModschedJoint/workers=1"], byName["ModschedJoint/workers=8"]; w8.NsPerOp > 0 {
		rep.SpeedupJointWorkers8 = serial.NsPerOp / w8.NsPerOp
	}

	// Population-level deltas: one RegN sweep point with the joint
	// search on, reusing the experiment driver so the numbers match
	// `vliwbench -joint` exactly.
	cfg := experiments.DefaultVLIW()
	cfg.Loops = modschedSampleLoops
	cfg.RegNs = []int{modschedRegN}
	cfg.Joint = true
	vrep, err := experiments.RunVLIW(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	row := vrep.Rows[0]
	rep.ModschedJoint = &modschedJointSummary{
		Loops:            cfg.Loops,
		Optimized:        vrep.Optimized,
		RegN:             row.RegN,
		DiffN:            cfg.DiffN,
		Improved:         row.JointImproved,
		SetsPhased:       row.SetLastRegs,
		SetsJoint:        row.JointSetLastRegs,
		SpeedupPhasedPct: row.SpeedupOptimized,
		SpeedupJointPct:  row.JointSpeedupOptimized,
		BBNodes:          row.JointNodes,
	}
	fmt.Fprintf(os.Stderr, "joint vs phased (%d loops, RegN=%d): %d improved, sets %d -> %d\n",
		cfg.Loops, row.RegN, row.JointImproved, row.SetLastRegs, row.JointSetLastRegs)
}
