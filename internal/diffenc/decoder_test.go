package diffenc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecoderSequentialBasics(t *testing.T) {
	d, err := NewDecoder(Config{RegN: 16, DiffN: 8})
	if err != nil {
		t.Fatal(err)
	}
	// §2's example: R1, R3, R8 from last_reg 0: codes 1, 2, 5.
	regs, err := d.DecodeInstr([]int{1, 2, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 8}
	for i := range want {
		if regs[i] != want[i] {
			t.Fatalf("regs = %v, want %v", regs, want)
		}
	}
	if d.LastReg(0) != 8 {
		t.Errorf("last_reg = %d, want 8", d.LastReg(0))
	}
}

func TestDecoderSetLastReg(t *testing.T) {
	d, _ := NewDecoder(Config{RegN: 4, DiffN: 2})
	d.SetLastReg(2)
	regs, err := d.DecodeInstr([]int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if regs[0] != 2 {
		t.Fatalf("decoded %d, want 2", regs[0])
	}
}

func TestDecoderRejectsBadCode(t *testing.T) {
	d, _ := NewDecoder(Config{RegN: 8, DiffN: 4})
	if _, err := d.DecodeInstr([]int{4}, nil); err == nil {
		t.Fatal("code 4 with DiffN=4 and no reserved slots must fail")
	}
	d2, _ := NewDecoder(Config{RegN: 8, DiffN: 4})
	if _, err := d2.DecodeInstrParallel([]int{9}, nil); err == nil {
		t.Fatal("parallel decoder accepted bad code")
	}
}

func TestDecoderReservedBypassesAdder(t *testing.T) {
	cfg := Config{RegN: 16, DiffN: 7, Reserved: []int{15}}
	d, _ := NewDecoder(cfg)
	regs, err := d.DecodeInstr([]int{3, 7, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 -> R3; code 7 -> reserved R15 (last_reg untouched); 1 -> R4.
	if regs[0] != 3 || regs[1] != 15 || regs[2] != 4 {
		t.Fatalf("regs = %v", regs)
	}
}

// TestQuickParallelEqualsSequential is §2.1's correctness claim: the
// prefix-adder parallel decode is observationally identical to the
// sequential decode, across instructions, classes and reserved codes.
func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{RegN: 8 + rng.Intn(24), DiffN: 0}
		cfg.DiffN = 1 + rng.Intn(cfg.RegN)
		if rng.Intn(3) == 0 {
			cfg.Reserved = []int{cfg.RegN - 1}
		}
		multiClass := rng.Intn(2) == 0
		if multiClass {
			cfg.ClassOf = func(r int) int { return r % 2 }
		}
		seqD, err := NewDecoder(cfg)
		if err != nil {
			return false
		}
		parD, _ := NewDecoder(cfg)
		for instr := 0; instr < 20; instr++ {
			n := 1 + rng.Intn(3)
			codes := make([]int, n)
			var classes []int
			if multiClass {
				classes = make([]int, n)
			}
			for i := range codes {
				codes[i] = rng.Intn(cfg.DiffN + len(cfg.Reserved))
				if multiClass {
					classes[i] = rng.Intn(2)
				}
			}
			a, err1 := seqD.DecodeInstr(codes, classes)
			b, err2 := parD.DecodeInstrParallel(codes, classes)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 != nil {
				continue
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			// Occasionally interleave a set_last_reg on both decoders.
			if rng.Intn(4) == 0 {
				v := rng.Intn(cfg.RegN)
				seqD.SetLastReg(v)
				parD.SetLastReg(v)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The decoder must agree with the sequence encoder: decoding the codes
// EncodeSequence produced (applying repairs) reproduces the registers.
func TestDecoderAgreesWithEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		regN := 4 + rng.Intn(28)
		cfg := Config{RegN: regN, DiffN: 1 + rng.Intn(regN)}
		regs := make([]int, rng.Intn(40))
		for i := range regs {
			regs[i] = rng.Intn(regN)
		}
		codes, repairs, err := EncodeSequence(regs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := NewDecoder(cfg)
		for i, code := range codes {
			if v, ok := repairs[i]; ok {
				d.SetLastReg(v)
			}
			got, err := d.DecodeInstr([]int{code}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != regs[i] {
				t.Fatalf("trial %d field %d: decoded R%d, want R%d", trial, i, got[0], regs[i])
			}
		}
	}
}
