//go:build !race

package service

// raceEnabled reports whether the race detector is compiled in; the
// deadline-calibrated portfolio tests skip under it, since the
// detector's 5-20x slowdown invalidates their latency envelopes.
const raceEnabled = false
