package diffsel

import (
	"testing"

	"diffra/internal/adjacency"
	"diffra/internal/diffenc"
	"diffra/internal/ir"
	"diffra/internal/irc"
	"diffra/internal/regalloc"
)

const chainSrc = `
func chain(v0, v1) {
entry:
  v2 = add v0, v1
  v3 = add v2, v0
  v4 = add v3, v2
  v5 = add v4, v3
  v6 = add v5, v4
  ret v6
}
`

func encodeCost(t *testing.T, out *ir.Func, asn *regalloc.Assignment, regN, diffN int) int {
	t.Helper()
	regOf := func(r ir.Reg) int { return asn.Color[r] }
	cfg := diffenc.Config{RegN: regN, DiffN: diffN}
	res, err := diffenc.Encode(out, regOf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := diffenc.Check(out, regOf, cfg, res); err != nil {
		t.Fatal(err)
	}
	return res.Cost()
}

func TestDifferentialSelectReducesCost(t *testing.T) {
	f := ir.MustParse(chainSrc)
	const regN, diffN = 8, 2

	baseOut, baseAsn, err := irc.Allocate(f, irc.Options{K: regN})
	if err != nil {
		t.Fatal(err)
	}
	selOut, selAsn, err := irc.Allocate(f, irc.Options{
		K:             regN,
		PickerFactory: NewFactory(Params{RegN: regN, DiffN: diffN}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.Verify(selOut, selAsn); err != nil {
		t.Fatalf("differential select broke the coloring: %v", err)
	}
	baseCost := encodeCost(t, baseOut, baseAsn, regN, diffN)
	selCost := encodeCost(t, selOut, selAsn, regN, diffN)
	if selCost > baseCost {
		t.Errorf("differential select cost %d > first-available cost %d", selCost, baseCost)
	}
	// Zero is unreachable here — the access sequence contains 3-cycles
	// whose per-edge differences cannot all be in {0,1} — but the
	// cost-minimizing select stage must stay within a small bound
	// (observed 4 with first-available baseline 4; the chain has 9
	// adjacency edges).
	if selCost > 4 {
		t.Errorf("differential select cost %d, want <= 4", selCost)
	}
}

func TestSelectZeroCostOnUnaryChain(t *testing.T) {
	// A unary chain has no adjacency cycles: v(i) -> v(i+1) edges only.
	// Differential select must find a zero-cost numbering.
	src := `
func u(v0) {
entry:
  v1 = neg v0
  v2 = neg v1
  v3 = neg v2
  v4 = neg v3
  v5 = neg v4
  ret v5
}
`
	f := ir.MustParse(src)
	out, asn, err := irc.Allocate(f, irc.Options{
		K:             4,
		PickerFactory: NewFactory(Params{RegN: 4, DiffN: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := encodeCost(t, out, asn, 4, 2); c != 0 {
		t.Errorf("unary chain cost %d, want 0", c)
	}
}

func TestSelectNeverSpillsMoreThanBaseline(t *testing.T) {
	// Differential select only changes the choice among legal colors;
	// spill decisions are unaffected.
	f := ir.MustParse(chainSrc)
	for _, k := range []int{3, 4, 8} {
		_, baseAsn, err := irc.Allocate(f, irc.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		_, selAsn, err := irc.Allocate(f, irc.Options{
			K:             k,
			PickerFactory: NewFactory(Params{RegN: k, DiffN: 2}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if selAsn.SpillInstrs != baseAsn.SpillInstrs {
			t.Errorf("K=%d: select spills %d != baseline %d", k, selAsn.SpillInstrs, baseAsn.SpillInstrs)
		}
	}
}

func TestPickCostCountsBothDirections(t *testing.T) {
	b := adjacency.New(3)
	b.AddWeight(0, 1, 2) // node 1 follows node 0
	b.AddWeight(1, 2, 3) // node 2 follows node 1
	g := b.Freeze()
	p := Params{RegN: 8, DiffN: 2}
	aliasOf := func(v int) int { return v }
	colorOf := func(v int) int {
		switch v {
		case 0:
			return 5
		case 2:
			return 4
		}
		return -1
	}
	// Candidate color 6 for node 1: edge 0->1 gives diff(5,6)=1 ok;
	// edge 1->2 gives diff(6,4)=6 violated -> cost 3.
	if c := PickCost(g, []int{1}, 1, 6, colorOf, aliasOf, p); c != 3 {
		t.Errorf("cost = %v, want 3", c)
	}
	// Candidate color 3: edge 0->1 diff(5,3)=6 violated (w=2); edge
	// 1->2 diff(3,4)=1 ok -> cost 2.
	if c := PickCost(g, []int{1}, 1, 3, colorOf, aliasOf, p); c != 2 {
		t.Errorf("cost = %v, want 2", c)
	}
	// Candidate color 5: 0->1 diff 0 ok; 1->2 diff(5,4)=7 violated.
	if c := PickCost(g, []int{1}, 1, 5, colorOf, aliasOf, p); c != 3 {
		t.Errorf("cost = %v, want 3", c)
	}
}

func TestPickCostMergedMembersAreFree(t *testing.T) {
	b := adjacency.New(4)
	b.AddWeight(0, 1, 5) // both members of the same class
	b.AddWeight(1, 2, 1)
	g := b.Freeze()
	p := Params{RegN: 8, DiffN: 2}
	aliasOf := func(v int) int {
		if v == 1 {
			return 0
		}
		return v
	}
	colorOf := func(v int) int {
		if v == 2 {
			return 7
		}
		return -1
	}
	// Members {0,1} share the candidate color: edge 0->1 free; edge
	// 1->2 with candidate 3: diff(3,7)=4 violated -> cost 1.
	if c := PickCost(g, []int{0, 1}, 0, 3, colorOf, aliasOf, p); c != 1 {
		t.Errorf("cost = %v, want 1", c)
	}
	// Candidate 6: diff(6,7)=1 ok -> cost 0.
	if c := PickCost(g, []int{0, 1}, 0, 6, colorOf, aliasOf, p); c != 0 {
		t.Errorf("cost = %v, want 0", c)
	}
}

func TestFactoryHandlesSpillRounds(t *testing.T) {
	// Under heavy pressure the allocator rewrites and re-runs; the
	// factory must build a fresh picker for the rewritten function
	// without index panics.
	src := `
func p(v0, v1, v2, v3, v4, v5) {
entry:
  v6 = add v0, v1
  v7 = add v2, v3
  v8 = add v4, v5
  v9 = add v6, v7
  v9 = add v9, v8
  v9 = add v9, v0
  v9 = add v9, v1
  v9 = add v9, v2
  v9 = add v9, v3
  v9 = add v9, v4
  v9 = add v9, v5
  ret v9
}
`
	f := ir.MustParse(src)
	out, asn, err := irc.Allocate(f, irc.Options{
		K:             3,
		PickerFactory: NewFactory(Params{RegN: 3, DiffN: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.Verify(out, asn); err != nil {
		t.Fatal(err)
	}
	if asn.SpillInstrs == 0 {
		t.Error("expected spills at K=3")
	}
}
