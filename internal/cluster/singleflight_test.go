package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCollapsesConcurrentCalls: N concurrent callers with one
// key run fn exactly once and all observe the identical result;
// exactly N-1 of them report shared.
func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	var g Group
	var sharedEvents atomic.Int64
	g.Shared = func() { sharedEvents.Add(1) }

	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	fn := func(ctx context.Context) ([]byte, int, map[string]string, error) {
		calls.Add(1)
		started <- struct{}{}
		<-gate
		return []byte("payload"), 200, map[string]string{"K": "V"}, nil
	}

	const n = 8
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	results := make([][]byte, n)

	// The leader goes first and blocks inside fn, guaranteeing the
	// other n-1 join its flight rather than racing to lead.
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload, _, _, shared, err := g.Do(context.Background(), "k", fn)
		if err != nil || shared {
			t.Errorf("leader: shared=%v err=%v", shared, err)
		}
		results[0] = payload
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, status, hdr, shared, err := g.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			if status != 200 || hdr["K"] != "V" {
				t.Errorf("caller %d: status=%d hdr=%v", i, status, hdr)
			}
			results[i] = payload
		}(i)
	}
	// Let the joiners block on the flight before releasing it. Their
	// join is registered synchronously inside Do, but give the
	// goroutines a moment to reach it.
	for sharedEvents.Load() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
	if s := sharedCount.Load(); s != n-1 {
		t.Fatalf("%d callers shared, want %d", s, n-1)
	}
	for i, r := range results {
		if string(r) != "payload" {
			t.Fatalf("caller %d payload %q", i, r)
		}
	}

	// The flight is gone: a fresh call runs fn again.
	done := make(chan struct{})
	go func() {
		g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, int, map[string]string, error) {
			calls.Add(1)
			return nil, 200, nil, nil
		})
		close(done)
	}()
	<-done
	if c := calls.Load(); c != 2 {
		t.Fatalf("fresh call after completion reused stale flight (calls=%d)", c)
	}
}

// TestGroupDistinctKeysDoNotShare: different keys are independent
// flights.
func TestGroupDistinctKeysDoNotShare(t *testing.T) {
	var g Group
	var calls atomic.Int64
	fn := func(ctx context.Context) ([]byte, int, map[string]string, error) {
		calls.Add(1)
		return nil, 200, nil, nil
	}
	var wg sync.WaitGroup
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			g.Do(context.Background(), k, fn)
		}(k)
	}
	wg.Wait()
	if c := calls.Load(); c != 3 {
		t.Fatalf("calls = %d, want 3", c)
	}
}

// TestGroupCancelsAbandonedFlight: when every waiter gives up, the
// flight's context is cancelled (the backend request is not orphaned)
// and the key is free for a fresh attempt.
func TestGroupCancelsAbandonedFlight(t *testing.T) {
	var g Group
	flightCancelled := make(chan struct{})
	fn := func(ctx context.Context) ([]byte, int, map[string]string, error) {
		<-ctx.Done()
		close(flightCancelled)
		return nil, 0, nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, _, err := g.Do(ctx, "k", fn)
		errc <- err
	}()
	// Wait for the flight to exist, then abandon it.
	for {
		g.mu.Lock()
		_, ok := g.flights["k"]
		g.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("abandoning caller got %v, want context.Canceled", err)
	}
	select {
	case <-flightCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context never cancelled after all waiters left")
	}

	// The key must be free immediately — not stuck on the dead flight.
	payload, _, _, shared, err := g.Do(context.Background(), "k",
		func(ctx context.Context) ([]byte, int, map[string]string, error) {
			return []byte("fresh"), 200, nil, nil
		})
	if err != nil || shared || string(payload) != "fresh" {
		t.Fatalf("post-abandon call: payload=%q shared=%v err=%v", payload, shared, err)
	}
}

// TestGroupLeaderHangupKeepsFlight: the leader's own disconnect must
// not kill the flight while another caller still waits on it.
func TestGroupLeaderHangupKeepsFlight(t *testing.T) {
	var g Group
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	fn := func(ctx context.Context) ([]byte, int, map[string]string, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return []byte("survived"), 200, nil, nil
		case <-ctx.Done():
			return nil, 0, nil, ctx.Err()
		}
	}

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, _, _, err := g.Do(leaderCtx, "k", fn)
		leaderErr <- err
	}()
	<-started

	joinerDone := make(chan string, 1)
	joined := make(chan struct{})
	go func() {
		close(joined)
		payload, _, _, _, err := g.Do(context.Background(), "k", fn)
		if err != nil {
			joinerDone <- "err: " + err.Error()
			return
		}
		joinerDone <- string(payload)
	}()
	<-joined
	// Make sure the joiner is registered on the flight before the
	// leader hangs up.
	for {
		g.mu.Lock()
		f := g.flights["k"]
		w := 0
		if f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	leaderCancel()
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("leader got %v, want context.Canceled", err)
	}
	close(gate)
	if got := <-joinerDone; got != "survived" {
		t.Fatalf("joiner got %q — leader hang-up killed the shared flight", got)
	}
}
