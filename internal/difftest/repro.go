package difftest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"diffra"
	"diffra/internal/ir"
)

// Repro is a self-contained failure reproducer: the function, the
// compile options that produced the divergence, and the input it
// diverged on. FuzzSemantics writes these to testdata/repro/ as .ir
// files with the metadata in leading comment lines, and the replay
// test re-runs every file there as a regression suite.
type Repro struct {
	Scheme diffra.Scheme
	// Alloc is the allocation backend the divergence occurred under;
	// empty means the scheme's preferred one (and is omitted from the
	// file, keeping pre-portfolio reproducers parseable).
	Alloc    diffra.Backend
	RegN     int
	DiffN    int
	Restarts int
	Args     []int64
	Mem      map[int64]int64
	F        *ir.Func
}

// Options returns the compile options the reproducer was found under.
func (r *Repro) Options() diffra.Options {
	return diffra.Options{Scheme: r.Scheme, Alloc: r.Alloc, RegN: r.RegN, DiffN: r.DiffN, Restarts: r.Restarts}
}

// Spec returns the run input.
func (r *Repro) Spec() RunSpec {
	return RunSpec{Args: r.Args, Mem: r.Mem, MaxSteps: 1_000_000}
}

// Format renders the reproducer as a .ir file with metadata comments.
func (r *Repro) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; difftest reproducer\n")
	fmt.Fprintf(&sb, "; scheme=%s regn=%d diffn=%d restarts=%d", r.Scheme, r.RegN, r.DiffN, r.Restarts)
	if r.Alloc != "" {
		fmt.Fprintf(&sb, " alloc=%s", r.Alloc)
	}
	sb.WriteString("\n")
	args := make([]string, len(r.Args))
	for i, a := range r.Args {
		args[i] = strconv.FormatInt(a, 10)
	}
	fmt.Fprintf(&sb, "; args=%s\n", strings.Join(args, ","))
	if len(r.Mem) > 0 {
		addrs := make([]int64, 0, len(r.Mem))
		for a := range r.Mem {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		cells := make([]string, len(addrs))
		for i, a := range addrs {
			cells[i] = fmt.Sprintf("%d:%d", a, r.Mem[a])
		}
		fmt.Fprintf(&sb, "; mem=%s\n", strings.Join(cells, ","))
	}
	sb.WriteString(r.F.String())
	return sb.String()
}

// ParseRepro reads a reproducer file back.
func ParseRepro(src string) (*Repro, error) {
	r := &Repro{Mem: map[int64]int64{}}
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ";") {
			continue
		}
		for _, tok := range strings.Fields(strings.TrimPrefix(line, ";")) {
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				continue
			}
			switch k {
			case "scheme":
				r.Scheme = diffra.Scheme(v)
			case "alloc":
				r.Alloc = diffra.Backend(v)
			case "regn":
				fmt.Sscanf(v, "%d", &r.RegN)
			case "diffn":
				fmt.Sscanf(v, "%d", &r.DiffN)
			case "restarts":
				fmt.Sscanf(v, "%d", &r.Restarts)
			case "args":
				if v == "" {
					continue
				}
				for _, s := range strings.Split(v, ",") {
					a, err := strconv.ParseInt(s, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("difftest: bad args entry %q: %v", s, err)
					}
					r.Args = append(r.Args, a)
				}
			case "mem":
				if v == "" {
					continue
				}
				for _, cell := range strings.Split(v, ",") {
					as, vs, ok := strings.Cut(cell, ":")
					if !ok {
						return nil, fmt.Errorf("difftest: bad mem cell %q", cell)
					}
					addr, err1 := strconv.ParseInt(as, 10, 64)
					val, err2 := strconv.ParseInt(vs, 10, 64)
					if err1 != nil || err2 != nil {
						return nil, fmt.Errorf("difftest: bad mem cell %q", cell)
					}
					r.Mem[addr] = val
				}
			}
		}
	}
	f, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	r.F = f
	if r.Scheme == "" || r.RegN == 0 {
		return nil, fmt.Errorf("difftest: reproducer is missing scheme/regn metadata")
	}
	return r, nil
}
