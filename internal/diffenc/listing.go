package diffenc

import (
	"fmt"
	"sort"
	"strings"

	"diffra/internal/ir"
)

// Listing renders a disassembler-style view of an encoded function:
// each instruction with its machine registers and, in a second column,
// the differential field codes the decoder will see, with planned
// set_last_reg insertions shown at their decode positions. Intended
// for humans inspecting what the encoder did (cmd/diffra -listing).
func Listing(f *ir.Func, regOf func(ir.Reg) int, cfg Config, res *Result) string {
	var sb strings.Builder

	// Group sets per (block, before) for display.
	setsAt := map[*ir.Block]map[int][]SetPoint{}
	for _, s := range res.Sets {
		if setsAt[s.Block] == nil {
			setsAt[s.Block] = map[int][]SetPoint{}
		}
		setsAt[s.Block][s.Before] = append(setsAt[s.Block][s.Before], s)
	}
	for _, m := range setsAt {
		for _, ss := range m {
			OrderSets(ss)
		}
	}

	ci := 0
	fmt.Fprintf(&sb, "; %s — RegN=%d DiffN=%d (fields: %d bits differential vs %d direct)\n",
		f.Name, cfg.RegN, cfg.DiffN, cfg.DiffW(), cfg.RegW())
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for i, in := range b.Instrs {
			for _, s := range setsAt[b][i] {
				if s.Delay >= 0 {
					fmt.Fprintf(&sb, "  %-34s ; decoder repair\n", fmt.Sprintf("set_last_reg %d, %d", s.Value, s.Delay))
				} else {
					fmt.Fprintf(&sb, "  %-34s ; decoder repair\n", fmt.Sprintf("set_last_reg %d", s.Value))
				}
			}
			flds := fieldsOf(in, cfg)
			codes := make([]string, len(flds))
			for k, r := range flds {
				c := res.Codes[ci]
				ci++
				if c >= cfg.DiffN {
					codes[k] = fmt.Sprintf("R%d=#%d", regOf(r), c)
				} else {
					codes[k] = fmt.Sprintf("R%d=+%d", regOf(r), c)
				}
			}
			line := machineString(in, regOf)
			if len(codes) > 0 {
				fmt.Fprintf(&sb, "  %-34s ; %s\n", line, strings.Join(codes, " "))
			} else {
				fmt.Fprintf(&sb, "  %s\n", line)
			}
		}
	}
	return sb.String()
}

// machineString prints an instruction with machine register names.
// Distinct vregs are rewritten longest-number-first so that v1 never
// clobbers the prefix of v12.
func machineString(in *ir.Instr, regOf func(ir.Reg) int) string {
	s := in.String()
	seen := map[ir.Reg]bool{}
	var regs []ir.Reg
	for _, r := range append(append([]ir.Reg(nil), in.Defs...), in.Uses...) {
		if !seen[r] {
			seen[r] = true
			regs = append(regs, r)
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] > regs[j] })
	for _, r := range regs {
		s = strings.ReplaceAll(s, fmt.Sprintf("v%d", r), fmt.Sprintf("R%d", regOf(r)))
	}
	return s
}
