// Command diffra compiles a textual IR function with a chosen register
// allocation scheme and differential encoding configuration, then
// reports the allocation, the encoding plan and the static costs. It
// is the interactive front door to the library:
//
//	diffra -scheme coalesce -regn 12 -diffn 8 program.ir
//	diffra -scheme baseline -regn 8 -dump program.ir
//	diffra -scheme coalesce -trace trace.json -explain-slr program.ir
//	diffra -addr localhost:8791 -scheme ospill program.ir
//	diffra -addr localhost:8791 -alloc auto -timeout-ms 50 program.ir
//
// With -addr the compilation is shipped to a running diffrad server
// (see cmd/diffrad) instead of happening in-process; -timeout-ms
// bounds the remote compile.
//
// -alloc picks the allocation backend independently of the scheme:
// irc (iterated register coalescing), ssa (the near-linear chordal
// scan), ospill (exact spilling), or auto, which steps down from the
// scheme's preferred backend to cheaper ones as the request deadline
// nears. Empty keeps the scheme's preferred backend.
//
// Schemes: baseline (iterated register coalescing, direct encoding),
// remapping (§5), select (§6), ospill (optimal spilling, direct),
// coalesce (§7).
//
// -selfcheck oracles the compile before reporting: the allocated
// program — run directly and through both stream-decode models — must
// reproduce the source's reference interpretation on a deterministic
// input, or diffra exits non-zero with the first divergence.
//
// Observability flags: -trace FILE writes the compile span tree as
// JSON lines (one span per line; "-" for stdout), -metrics prints the
// process-wide metrics registry on exit — including the per-stage
// latency histograms (diffra_stage_us{stage,scheme}, with p50/p95/p99)
// folded out of the compile's span tree — -explain-slr attributes every
// set_last_reg repair to its cause (out-of-range difference or
// control-flow join), and -cpuprofile/-memprofile write pprof
// profiles.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"diffra"
	"diffra/internal/diffenc"
	"diffra/internal/difftest"
	"diffra/internal/ir"
	"diffra/internal/pipeline"
	"diffra/internal/service"
	"diffra/internal/telemetry"
)

func main() {
	scheme := flag.String("scheme", "select", "baseline|remapping|select|ospill|coalesce")
	alloc := flag.String("alloc", "", "allocation backend: auto|irc|ssa|ospill (empty = the scheme's preferred; auto steps down as the deadline nears)")
	regN := flag.Int("regn", 12, "addressable registers (RegN)")
	diffN := flag.Int("diffn", 8, "encodable differences (DiffN)")
	restarts := flag.Int("restarts", 1000, "remapping restarts")
	remapWorkers := flag.Int("remap-workers", 0, "parallel remap-search workers, bit-identical result at any count (0 = GOMAXPROCS; in-process only)")
	spillWorkers := flag.Int("spill-workers", 0, "parallel spill-ILP workers (ospill/coalesce), bit-identical result at any count (0 = serial; in-process only)")
	dump := flag.Bool("dump", false, "print the allocated function")
	listing := flag.Bool("listing", false, "print the encoded listing (differential schemes)")
	runArgs := flag.String("run", "", "simulate with comma-separated integer arguments (e.g. -run 3,5)")
	traceFile := flag.String("trace", "", "write the compile span tree as JSON lines to FILE (\"-\" for stdout)")
	metrics := flag.Bool("metrics", false, "print the metrics registry on exit")
	explainSLR := flag.Bool("explain-slr", false, "attribute every set_last_reg repair to its cause")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE")
	addr := flag.String("addr", "", "compile remotely via a diffrad server at HOST:PORT instead of in-process")
	timeoutMs := flag.Int("timeout-ms", 0, "remote compile deadline in milliseconds (with -addr; 0 = server default)")
	selfCheck := flag.Bool("selfcheck", false, "oracle the compile against the reference interpreter (in-process only)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: diffra [flags] program.ir")
		os.Exit(2)
	}

	if *addr != "" {
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		err = remote(os.Stdout, *addr, service.Request{
			IR:        string(src),
			Scheme:    *scheme,
			Alloc:     *alloc,
			RegN:      *regN,
			DiffN:     *diffN,
			Restarts:  *restarts,
			TimeoutMs: *timeoutMs,
			Listing:   *listing,
			Explain:   *explainSLR,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// -trace and -metrics share one tracer: the JSON sink writes the
	// span tree, the span→metrics bridge folds it into per-stage
	// histograms so -metrics shows the same breakdown without a trace
	// file configured.
	var sinks telemetry.MultiSink
	if *traceFile != "" {
		var w io.Writer = os.Stdout
		if *traceFile != "-" {
			tf, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			defer tf.Close()
			w = tf
		}
		sinks = append(sinks, &telemetry.JSONSink{W: w})
	}
	if *metrics {
		sinks = append(sinks, &telemetry.MetricsSink{Reg: telemetry.Default})
	}
	var tracer *telemetry.Tracer
	if len(sinks) > 0 {
		tracer = telemetry.New(sinks)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := ir.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	res, err := diffra.CompileFunc(f.Clone(), diffra.Options{
		Scheme:       diffra.Scheme(*scheme),
		Alloc:        diffra.Backend(*alloc),
		RegN:         *regN,
		DiffN:        *diffN,
		Restarts:     *restarts,
		RemapWorkers: *remapWorkers,
		SpillWorkers: *spillWorkers,
		Telemetry:    tracer,
	})
	if err != nil {
		fatal(err)
	}
	out, asn := res.F, res.Assignment

	fmt.Printf("function       %s\n", out.Name)
	fmt.Printf("scheme         %s (RegN=%d DiffN=%d)\n", *scheme, *regN, *diffN)
	fmt.Printf("alloc backend  %s\n", res.AllocBackend)
	fmt.Printf("instructions   %d\n", res.Instrs)
	fmt.Printf("spill instrs   %d (%.2f%%)\n", res.SpillInstrs, pct(res.SpillInstrs, res.Instrs))
	fmt.Printf("spilled ranges %d\n", asn.SpilledVRegs)
	fmt.Printf("moves removed  %d\n", asn.CoalescedMoves)

	cfg := diffenc.Config{RegN: *regN, DiffN: *diffN}
	regOf := func(r ir.Reg) int { return asn.Color[r] }
	if enc := res.Encoding; enc != nil {
		fmt.Printf("field width    %d bits (direct would need %d)\n", cfg.DiffW(), cfg.RegW())
		fmt.Printf("set_last_reg   %d (%d out-of-range, %d join), %.2f%% of code after insertion\n",
			enc.Cost(), enc.RangeSets(), enc.JoinSets, pct(enc.Cost(), res.Instrs))
		if *explainSLR {
			fmt.Println()
			diffenc.Explain(os.Stdout, out.Name, enc)
		}
		if *listing {
			fmt.Println()
			fmt.Print(diffenc.AppliedListing(out, regOf, cfg, enc))
		}
	} else if *explainSLR {
		fmt.Printf("set_last_reg   0 (scheme %q encodes directly)\n", *scheme)
	}

	if *selfCheck {
		spec := difftest.DefaultSpec(f)
		if err := difftest.CheckCompiled(f, res, spec); err != nil {
			fatal(fmt.Errorf("selfcheck: %w", err))
		}
		fmt.Printf("selfcheck      ok (allocated + sequential/parallel decode vs reference, args=%v)\n", spec.Args)
	}

	if *dump {
		fmt.Println()
		fmt.Print(out)
		fmt.Println("register assignment:")
		for v, c := range asn.Color {
			if c >= 0 {
				fmt.Printf("  v%d -> R%d\n", v, c)
			}
		}
	}

	if *runArgs != "" {
		args, err := parseArgs(*runArgs)
		if err != nil {
			fatal(err)
		}
		mach, err := pipeline.New(pipeline.LowEnd())
		if err != nil {
			fatal(err)
		}
		// Reference run on virtual registers, then the allocated run.
		want, _, err := mach.Run(f, nil, pipeline.RunOptions{Args: args})
		if err != nil {
			fatal(err)
		}
		got, st, err := mach.Run(out, asn, pipeline.RunOptions{Args: args, OrigParams: f.Params})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Printf("simulated(%s)  = %d (reference %d)\n", *runArgs, got, want)
		fmt.Printf("%s\n", st.String())
		if got != want {
			fatal(fmt.Errorf("allocated run disagrees with reference"))
		}
	}

	if *metrics {
		fmt.Println()
		telemetry.Default.WriteText(os.Stdout)
	}
	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fatal(err)
		}
	}
}

// remote ships the request to a diffrad server and renders the
// response to w in the same shape as a local compile. Every failure —
// transport, a non-JSON reply, or a compile error reported by the
// server — comes back as an error carrying the server's message, so
// main exits non-zero with the cause on stderr.
func remote(w io.Writer, addr string, req service.Request) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	hr, err := http.Post(addr+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hr.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("reading response (%s): %v", hr.Status, err)
	}
	var resp service.Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		// Not a service Response (wrong endpoint, proxy error page):
		// surface the status and whatever the server said verbatim.
		return fmt.Errorf("server %s: %s", hr.Status, strings.TrimSpace(string(raw)))
	}
	if resp.Error != "" {
		return fmt.Errorf("%s", resp.Error)
	}
	fmt.Fprintf(w, "function       %s (remote%s)\n", resp.Func, map[bool]string{true: ", cached", false: ""}[resp.Cached])
	fmt.Fprintf(w, "scheme         %s (RegN=%d DiffN=%d)\n", resp.Scheme, resp.RegN, resp.DiffN)
	if resp.AllocBackend != "" {
		fmt.Fprintf(w, "alloc backend  %s\n", resp.AllocBackend)
	}
	fmt.Fprintf(w, "instructions   %d\n", resp.Instrs)
	fmt.Fprintf(w, "spill instrs   %d (%.2f%%)\n", resp.SpillInstrs, pct(resp.SpillInstrs, resp.Instrs))
	fmt.Fprintf(w, "spilled ranges %d\n", resp.SpilledVRegs)
	fmt.Fprintf(w, "moves removed  %d\n", resp.CoalescedMoves)
	if resp.SetLastRegs > 0 || resp.DiffW > 0 {
		fmt.Fprintf(w, "field width    %d bits (direct would need %d)\n", resp.DiffW, resp.RegW)
		fmt.Fprintf(w, "set_last_reg   %d (%d out-of-range, %d join), %.2f%% of code after insertion\n",
			resp.SetLastRegs, resp.RangeSets, resp.JoinSets, pct(resp.SetLastRegs, resp.Instrs))
	}
	if resp.Explain != "" {
		fmt.Fprintln(w)
		fmt.Fprint(w, resp.Explain)
	}
	if resp.Listing != "" {
		fmt.Fprintln(w)
		fmt.Fprint(w, resp.Listing)
	}
	return nil
}

func parseArgs(s string) ([]int64, error) {
	var out []int64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad argument %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffra:", strings.TrimPrefix(err.Error(), "diffra: "))
	os.Exit(1)
}
