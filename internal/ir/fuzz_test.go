package ir

import (
	"strings"
	"testing"
)

// FuzzParse hardens the IR parser: arbitrary input must either be
// rejected with an error or produce a function that verifies and
// round-trips through the printer.
func FuzzParse(f *testing.F) {
	f.Add(loopSrc)
	f.Add("func f() {\nentry:\n  ret\n}")
	f.Add("func f(v0) {\nentry:\n  v1 = li 3\n  store v1, v0, 0\n  ret v1\n}")
	f.Add("func f(v0) {\nentry:\n  br v0 -> a, b\na:\n  jmp b\nb:\n  ret\n}")
	f.Add("func f(v0) {\nentry:\n  set_last_reg 3, 1\n  ret v0\n}")
	f.Add("garbage")
	f.Add("func f( {")
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Parse(src)
		if err != nil {
			return
		}
		if err := fn.Verify(); err != nil {
			t.Fatalf("Parse accepted unverifiable function: %v\nsource: %q", err, src)
		}
		text := fn.String()
		fn2, err := Parse(text)
		if err != nil {
			t.Fatalf("printer output unparseable: %v\n%s", err, text)
		}
		if got := fn2.String(); got != text {
			t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", text, got)
		}
	})
}

// FuzzParseNeverPanics feeds hostile fragments with control characters
// and long lines.
func FuzzParseNeverPanics(f *testing.F) {
	f.Add("func f() {\n" + strings.Repeat("x:\n", 100) + "}")
	f.Add("func \x00() {}")
	f.Add("func f(v999999999999999999) {\nentry:\n ret\n}")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src) // must not panic
	})
}
