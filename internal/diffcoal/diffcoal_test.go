package diffcoal

import (
	"testing"

	"diffra/internal/diffenc"
	"diffra/internal/ir"
	"diffra/internal/regalloc"
)

// movesSrc has several moves a coalescer can eliminate plus enough
// arithmetic to give the adjacency graph structure.
const movesSrc = `
func m(v0, v1) {
entry:
  v2 = mov v0
  v3 = add v2, v1
  v4 = mov v3
  v5 = add v4, v2
  v6 = mov v5
  v7 = add v6, v4
  ret v7
}
`

func checkAlloc(t *testing.T, out *ir.Func, asn *regalloc.Assignment) {
	t.Helper()
	if err := out.Verify(); err != nil {
		t.Fatalf("IR: %v", err)
	}
	if err := regalloc.Verify(out, asn); err != nil {
		t.Fatalf("allocation: %v", err)
	}
}

func TestAllocateCoalescesMoves(t *testing.T) {
	f := ir.MustParse(movesSrc)
	out, asn, st, err := Allocate(f, Options{RegN: 8, DiffN: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkAlloc(t, out, asn)
	if st.Coalesced == 0 {
		t.Error("no moves coalesced")
	}
	moves := 0
	for _, b := range out.Blocks {
		for _, in := range b.Instrs {
			if in.IsMove() {
				moves++
			}
		}
	}
	if moves != 3-st.Coalesced {
		t.Errorf("moves left %d, coalesced %d (3 total)", moves, st.Coalesced)
	}
}

func TestAllocateEncodableResult(t *testing.T) {
	f := ir.MustParse(movesSrc)
	const regN, diffN = 8, 2
	out, asn, st, err := Allocate(f, Options{RegN: regN, DiffN: diffN})
	if err != nil {
		t.Fatal(err)
	}
	checkAlloc(t, out, asn)
	regOf := func(r ir.Reg) int { return asn.Color[r] }
	cfg := diffenc.Config{RegN: regN, DiffN: diffN}
	res, err := diffenc.Encode(out, regOf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := diffenc.Check(out, regOf, cfg, res); err != nil {
		t.Fatal(err)
	}
	// The reported adjacency cost should reflect the coloring it chose.
	if st.FinalDiffCost < 0 {
		t.Errorf("negative cost %v", st.FinalDiffCost)
	}
}

func TestCoalescingNeverIncreasesCombinedCost(t *testing.T) {
	// The §7 invariant: every committed coalesce strictly reduces the
	// combined move + set_last_reg cost, so the final cost is at most
	// the pre-coalescing cost. (Cross-allocator comparisons are
	// averaged in the experiments harness, not asserted per function.)
	f := ir.MustParse(movesSrc)
	const regN, diffN = 8, 2
	out, asn, st, err := Allocate(f, Options{RegN: regN, DiffN: diffN})
	if err != nil {
		t.Fatal(err)
	}
	checkAlloc(t, out, asn)
	if st.FinalCost > st.InitialCost {
		t.Errorf("coalescing increased cost: %v -> %v", st.InitialCost, st.FinalCost)
	}
	if st.Coalesced > 0 && st.FinalCost >= st.InitialCost {
		t.Errorf("committed %d coalesces without cost reduction (%v -> %v)",
			st.Coalesced, st.InitialCost, st.FinalCost)
	}
	// The model's final cost must agree with the independently encoded
	// program: sets (Cost) + remaining moves, frequency-weighted; for
	// this straight-line function all weights are 1.
	cfg := diffenc.Config{RegN: regN, DiffN: diffN}
	res, err := diffenc.Encode(out, func(r ir.Reg) int { return asn.Color[r] }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The adjacency-graph model and the encoder agree on straight-line
	// code except for one boundary: the hardware's last_reg resets to 0
	// on entry, so the program's first access may need one repair that
	// the paper's graph model (which has no virtual initial node) does
	// not represent.
	got := float64(res.Cost() + countMoves(out))
	if got != st.FinalCost && got != st.FinalCost+1 {
		t.Errorf("encoder-measured cost %v != model cost %v (+1 boundary allowed)", got, st.FinalCost)
	}
}

func countMoves(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.IsMove() {
				n++
			}
		}
	}
	return n
}

func TestAllocateUnderPressureSpillsOptimally(t *testing.T) {
	src := `
func p(v0, v1, v2, v3, v4, v5) {
entry:
  jmp head
head:
  blt v0, v1 -> body, exit
body:
  v0 = add v0, v1
  v1 = add v1, v2
  v2 = add v2, v3
  v3 = add v3, v4
  v4 = add v4, v5
  v5 = add v5, v0
  jmp head
exit:
  v6 = add v0, v1
  v6 = add v6, v2
  v6 = add v6, v3
  v6 = add v6, v4
  v6 = add v6, v5
  ret v6
}
`
	f := ir.MustParse(src)
	out, asn, st, err := Allocate(f, Options{RegN: 4, DiffN: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkAlloc(t, out, asn)
	if st.Spill.ILPSpilled == 0 {
		t.Error("expected ILP spills at RegN=4")
	}
	if !st.Spill.ILPOptimal {
		t.Error("small instance should be optimal")
	}
}

func TestConstrainedMoveNotCoalesced(t *testing.T) {
	// v0 stays live across its copy's redefinition: interference makes
	// the move unco­alescible, and the allocator must keep it.
	src := `
func c(v0) {
entry:
  v1 = mov v0
  v1 = add v1, v0
  v2 = add v1, v0
  ret v2
}
`
	f := ir.MustParse(src)
	out, asn, st, err := Allocate(f, Options{RegN: 8, DiffN: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkAlloc(t, out, asn)
	if st.Coalesced != 0 {
		t.Errorf("coalesced %d constrained moves", st.Coalesced)
	}
	if countMoves(out) != 1 {
		t.Errorf("the constrained move must remain")
	}
	if asn.Color[0] == asn.Color[1] {
		t.Error("interfering endpoints share a register")
	}
}

func TestDeterministic(t *testing.T) {
	f := ir.MustParse(movesSrc)
	_, a1, _, err := Allocate(f, Options{RegN: 8, DiffN: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, a2, _, err := Allocate(f, Options{RegN: 8, DiffN: 2})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a1.Color {
			if a1.Color[v] != a2.Color[v] {
				t.Fatalf("run %d: nondeterministic coloring", i)
			}
		}
	}
}

func TestRejectsTinyRegN(t *testing.T) {
	f := ir.MustParse(movesSrc)
	if _, _, _, err := Allocate(f, Options{RegN: 1, DiffN: 1}); err == nil {
		t.Fatal("RegN=1 must be rejected")
	}
}
