package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a, so b is now oldest
		t.Fatal("a missing before capacity reached")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %t after eviction of b", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %t", v, ok)
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d, want 2/1", c.Len(), c.Evictions())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU[string](0)
	c.Put("k", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}

// TestLRUConcurrentEviction races Get/Put over a keyspace several
// times the capacity, so evictions are constant while readers touch
// the same entries. Run under -race this pins the locking; the value
// checks pin that an entry never migrates to the wrong key.
func TestLRUConcurrentEviction(t *testing.T) {
	c := NewLRU[int](16)
	const (
		goroutines = 8
		keys       = 64
		rounds     = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (g*31 + i) % keys
				key := fmt.Sprintf("k%d", k)
				if v, ok := c.Get(key); ok && v != k {
					t.Errorf("key %s returned value %d", key, v)
					return
				}
				c.Put(key, k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("capacity exceeded: %d entries", c.Len())
	}
	if c.Evictions() == 0 {
		t.Fatal("stress run never evicted — capacity pressure not exercised")
	}
}
